"""The frontier-batch grounding tier.

Three layers under test, bottom-up:

* :func:`repro.relational.vector.binding_matrix_batch` /
  :func:`~repro.relational.vector.split_by_group` — one columnar join
  over a stacked block of coded instances must answer exactly like the
  per-instance evaluations, group by group (the state-id column is folded
  into the join keys, so groups never bleed into each other);
* the kernel's memo-warming entries
  (:meth:`~repro.relational.kernel.RelationalKernel
  .warm_legal_substitutions` /
  :meth:`~repro.relational.kernel.RelationalKernel.warm_ground_effects`
  via :func:`repro.engine.generators.warm_frontier_block`) — warming
  fills the same per-instance memos with the same values and the same
  counter totals as the per-state calls, and dedups cross-state by the
  plans' read sets;
* the explorer's batched driver — whole builds bit-identical with the
  tier on and off (the broad sweep lives in ``test_differential.py``;
  here the deep-frontier ``conveyor`` family plus the
  ``abstraction_stats["batch"]`` accounting).

Plus the per-plan adaptive backoff of ``binding_matrix`` (losing plans
pin to the interpreted backend; batch calls ignore pins — amortization
is their point).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.execution import (
    clear_subproblem_caches, enabled_moves, _sigma_items)
from repro.engine import DetAbstractionGenerator
from repro.engine.generators import warm_frontier_block
from repro.fol.ast import And, Atom, Eq, Exists, Forall, Not, Or
from repro.fol.compile import CompiledQuery
from repro.relational import Instance, fact, vector
from repro.relational.coding import CodedInstance, TermTable
from repro.relational.kernel import kernel_for
from repro.relational.values import Var
from repro.semantics import build_det_abstraction
from repro.workloads import conveyor_dcds

x, y, z = Var("x"), Var("y"), Var("z")

vector_live = pytest.mark.skipif(
    not vector.vector_enabled(),
    reason="vector backend off (REPRO_NO_VECTOR / numpy unavailable)")


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_subproblem_caches()
    yield
    clear_subproblem_caches()


def encode(table: TermTable, instance: Instance) -> CodedInstance:
    grouped = {}
    for current in instance:
        relation = table.code(current.relation)
        grouped.setdefault(relation, []).append(table.codes(current.terms))
    return CodedInstance(
        {relation: tuple(tuples) for relation, tuples in grouped.items()})


# ---------------------------------------------------------------------------
# binding_matrix_batch: per-group answers == per-instance answers
# ---------------------------------------------------------------------------

def block_instances():
    """A frontier-like block: siblings sharing relations, a duplicate,
    an instance where ``R`` is empty, and one with an empty domain
    difference — the shapes that stress group separation."""
    import random

    rng = random.Random(7)
    nodes = [f"n{i}" for i in range(9)]
    shared_s = [fact("S", node) for node in nodes[:4]]

    def digraph(seed, n_edges):
        local = random.Random(seed)
        return [fact("R", local.choice(nodes), local.choice(nodes))
                for _ in range(n_edges)]

    first = Instance(digraph(0, 18) + shared_s)
    second = Instance(digraph(1, 14) + shared_s)
    third = Instance(shared_s)                       # R empty
    fourth = Instance(digraph(0, 18) + shared_s)     # == first (dup group)
    fifth = Instance(digraph(2, 10) + [fact("S", "n8")])
    assert first == fourth
    return [first, second, third, fourth, fifth]


BATCH_FORMULAS = [
    Atom("R", (x, y)),
    And.of(Atom("R", (x, y)), Atom("S", (y,))),
    And.of(Atom("R", (x, y)), Not(Atom("S", (y,)))),
    And.of(Atom("R", (x, y)), Atom("R", (y, z))),
    Or.of(Atom("S", (x,)), Atom("R", (x, x))),
    Exists((y,), And.of(Atom("R", (x, y)), Atom("S", (y,)))),
    Forall((y,), Or.of(Not(Atom("R", (x, y))), Atom("S", (y,)))),
    And.of(Atom("R", (x, y)), Eq(x, "n0")),
    Not(Atom("S", (x,))),
    Eq(x, y),
]


@vector_live
@pytest.mark.parametrize("formula", BATCH_FORMULAS,
                         ids=[str(i) for i in range(len(BATCH_FORMULAS))])
def test_batched_answers_match_per_instance(formula):
    table = TermTable()
    plan = CompiledQuery(formula, table)
    instances = block_instances()
    codeds = [encode(table, instance) for instance in instances]
    domains = [plan.domain(coded, table, frozenset()) for coded in codeds]
    free = sorted(plan.free_slots.items(), key=lambda item: item[0].name)
    slots = [slot for _, slot in free]

    matrix = vector.binding_matrix_batch(plan, codeds, domains)
    assert matrix is not None
    groups = vector.split_by_group(matrix, len(codeds), plan.n_slots)
    assert len(groups) == len(codeds)

    for coded, domain, group in zip(codeds, domains, groups):
        batched = {
            tuple(table.term(code) for code in row)
            for row in vector.distinct_projection(group, slots)}
        interpreted = {
            tuple(table.term(binding[slot]) for slot in slots)
            for binding in plan.iter_bindings(
                coded, plan.fresh_regs(), domain)}
        assert batched == interpreted


@vector_live
def test_split_by_group_partitions_and_drops_gid():
    np = pytest.importorskip("numpy")
    # Rows deliberately interleaved across groups; group 1 empty.
    matrix = np.array([
        [10, 11, 2],
        [20, 21, 0],
        [30, 31, 2],
        [40, 41, 3],
        [50, 51, 0],
    ], dtype=np.int64)
    groups = vector.split_by_group(matrix, 4, gid_slot=2)
    assert [group.tolist() for group in groups] == [
        [[20, 21], [50, 51]],
        [],
        [[10, 11], [30, 31]],
        [[40, 41]],
    ]


@vector_live
def test_batch_ignores_min_tuples_gate():
    # Tiny instances are below MIN_TUPLES (the per-state gate) but the
    # batch entry must still evaluate them — amortization is its point.
    table = TermTable()
    plan = CompiledQuery(Atom("R", (x, y)), table)
    instances = [Instance([fact("R", f"a{i}", f"b{i}")]) for i in range(5)]
    codeds = [encode(table, instance) for instance in instances]
    domains = [plan.domain(coded, table, frozenset()) for coded in codeds]
    assert all(vector.binding_matrix(plan, coded, domain) is None
               for coded, domain in zip(codeds, domains))
    matrix = vector.binding_matrix_batch(plan, codeds, domains)
    assert matrix is not None
    groups = vector.split_by_group(matrix, len(codeds), plan.n_slots)
    assert all(len(group) == 1 for group in groups)


# ---------------------------------------------------------------------------
# Kernel memo warming: same values, same counters, cross-state dedup
# ---------------------------------------------------------------------------

def frontier_block(dcds, width=8):
    """Distinct reachable instances of ``dcds`` to use as one block."""
    ts = build_det_abstraction(dcds, max_states=500)
    instances = list(dict.fromkeys(
        ts.db(state) for state in sorted(ts.states, key=str)))
    return instances[:width]


def grounding_tables(dcds, instances, warm):
    """Every per-state grounding result plus the counters, optionally
    after warming the whole block first."""
    kernel = kernel_for(dcds)
    assert kernel is not None
    if warm:
        warm_frontier_block(
            DetAbstractionGenerator(dcds), ("test-block",), instances)
    legal = {}
    for rule in dcds.process.rules:
        action = dcds.process.action(rule.action)
        for index, instance in enumerate(instances):
            legal[(rule.action, index)] = kernel.legal_substitution_items(
                rule, action.params, instance)
    effects = {}
    for index, instance in enumerate(instances):
        for action, sigma in enabled_moves(dcds, instance):
            items = _sigma_items(sigma)
            for position, effect in enumerate(action.effects):
                effects[(action.name, items, position, index)] = \
                    kernel.ground_effect(effect, items, instance)
    return legal, effects, dict(kernel.stats), dict(kernel.batch_stats)


class TestMemoWarming:
    def test_warmed_values_and_counters_match_per_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        instances = frontier_block(conveyor_dcds(1))
        assert len(instances) >= vector.MIN_BATCH_GROUPS

        clear_subproblem_caches()
        legal_cold, effects_cold, stats_cold, _ = grounding_tables(
            conveyor_dcds(1), instances, warm=False)
        clear_subproblem_caches()
        legal_warm, effects_warm, stats_warm, batch = grounding_tables(
            conveyor_dcds(1), instances, warm=True)

        assert legal_warm == legal_cold
        assert effects_warm == effects_cold
        # Warming bumps the same per-state counters the per-state entries
        # would have (once per memo entry filled, fan-out included), so
        # the totals agree batch-on vs batch-off.
        for key in ("legal_evals", "effect_evals", "fallbacks"):
            assert stats_warm[key] == stats_cold[key], key
        assert batch["blocks"] == 1
        assert batch["warmed_entries"] > 0

    def test_cross_state_dedup_accounting(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        instances = frontier_block(conveyor_dcds(1))
        clear_subproblem_caches()
        _, _, _, batch = grounding_tables(
            conveyor_dcds(1), instances, warm=True)
        # Frontier siblings share the static payload graph P, so plans
        # reading only P collapse to one group per block.
        assert batch["unique_groups"] < batch["warmed_entries"]
        assert batch["dedup_hits"] \
            == batch["warmed_entries"] - batch["unique_groups"]
        assert batch["dedup_hits"] > 0

    def test_thin_blocks_fall_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        instances = frontier_block(
            conveyor_dcds(1))[:vector.MIN_BATCH_GROUPS - 1]
        clear_subproblem_caches()
        dcds = conveyor_dcds(1)
        kernel = kernel_for(dcds)
        warm_frontier_block(
            DetAbstractionGenerator(dcds), ("thin",), instances)
        assert kernel.batch_stats["thin_blocks"] == 1
        assert kernel.batch_stats["blocks"] == 0
        assert kernel.batch_stats["warmed_entries"] == 0

    def test_no_batch_flag_makes_warming_a_no_op(self, monkeypatch):
        instances = frontier_block(conveyor_dcds(1))
        clear_subproblem_caches()
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        dcds = conveyor_dcds(1)
        kernel = kernel_for(dcds)
        stats_before = dict(kernel.stats)
        warm_frontier_block(
            DetAbstractionGenerator(dcds), ("off",), instances)
        assert dict(kernel.stats) == stats_before
        assert kernel.batch_stats["blocks"] == 0
        assert kernel.batch_stats["warmed_entries"] == 0
        assert kernel.batch_stats_dict()["enabled"] is False


# ---------------------------------------------------------------------------
# Explorer driver: batched builds bit-identical, stats recorded
# ---------------------------------------------------------------------------

class TestBatchedDriver:
    def build(self):
        return build_det_abstraction(conveyor_dcds(1), max_states=500)

    def test_batched_build_matches_per_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        batched = self.build()
        clear_subproblem_caches()
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        per_state = self.build()
        assert batched.states == per_state.states
        assert Counter(batched.edges()) == Counter(per_state.edges())
        for state in batched.states:
            assert batched.db(state) == per_state.db(state)
        for key in ("growth_trace", "expansions", "frontier_peak",
                    "explored_states", "explored_edges"):
            assert batched.exploration_stats[key] \
                == per_state.exploration_stats[key], key
        for key in ("legal_evals", "effect_evals", "fallbacks"):
            assert batched.exploration_stats["kernel"][key] \
                == per_state.exploration_stats["kernel"][key], key

    def test_batch_stats_recorded(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        stats = self.build().exploration_stats["batch"]
        assert stats["enabled"] is True
        assert stats["blocks"] > 0
        assert stats["block_states_peak"] >= vector.MIN_BATCH_GROUPS
        assert stats["warmed_entries"] > 0
        assert stats["dedup_hits"] > 0

    def test_no_batch_driver_records_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        stats = self.build().exploration_stats["batch"]
        assert stats["enabled"] is False
        assert stats["blocks"] == 0
        assert stats["thin_blocks"] == 0


# ---------------------------------------------------------------------------
# Per-plan adaptive backoff (binding_matrix); batch entry ignores pins
# ---------------------------------------------------------------------------

@vector_live
class TestAdaptiveBackoff:
    def dense(self):
        table = TermTable()
        plan = CompiledQuery(
            And.of(Atom("R", (x, y)), Atom("R", (y, z))), table)
        instance = Instance(
            [fact("R", f"n{i}", f"n{j}")
             for i in range(6) for j in range(6)]
            + [fact("R", f"m{i}", f"m{i + 1}") for i in range(10)])
        coded = encode(table, instance)
        domain = plan.domain(coded, table, frozenset())
        return plan, coded, domain

    def test_consecutive_losses_pin_the_plan(self, monkeypatch):
        # Zero budget: every evaluation counts as a loss.
        monkeypatch.setattr(vector, "BACKOFF_NS_PER_TUPLE", 0)
        monkeypatch.setattr(vector, "BACKOFF_AFTER", 3)
        plan, coded, domain = self.dense()
        stats = {}
        for _ in range(vector.BACKOFF_AFTER):
            assert vector.binding_matrix(
                plan, coded, domain, stats=stats) is not None
        assert plan.backoff == vector.BACKOFF_AFTER
        assert stats.get("plans_pinned") == 1
        # Pinned: subsequent calls skip numpy entirely.
        assert vector.binding_matrix(plan, coded, domain, stats=stats) \
            is None
        assert vector.binding_matrix(plan, coded, domain, stats=stats) \
            is None
        assert stats.get("pin_skips") == 2
        assert stats.get("plans_pinned") == 1

    def test_one_win_resets_the_streak(self, monkeypatch):
        monkeypatch.setattr(vector, "BACKOFF_NS_PER_TUPLE", 0)
        monkeypatch.setattr(vector, "BACKOFF_AFTER", 3)
        plan, coded, domain = self.dense()
        vector.binding_matrix(plan, coded, domain)
        vector.binding_matrix(plan, coded, domain)
        assert plan.backoff == 2
        # A generous budget turns the next evaluation into a win.
        monkeypatch.setattr(vector, "BACKOFF_NS_PER_TUPLE", 10 ** 9)
        vector.binding_matrix(plan, coded, domain)
        assert plan.backoff is None

    def test_batch_entry_ignores_pins(self, monkeypatch):
        monkeypatch.setattr(vector, "BACKOFF_NS_PER_TUPLE", 0)
        monkeypatch.setattr(vector, "BACKOFF_AFTER", 1)
        plan, coded, domain = self.dense()
        vector.binding_matrix(plan, coded, domain)
        assert plan.backoff == vector.BACKOFF_AFTER
        assert vector.binding_matrix(plan, coded, domain) is None
        matrix = vector.binding_matrix_batch(
            plan, [coded, coded, coded, coded],
            [domain, domain, domain, domain])
        assert matrix is not None
