"""The verify() pipeline: Table 1 routing."""

import pytest

from repro import UndecidableFragment, verify
from repro.core import DCDSBuilder, ServiceSemantics
from repro.gallery import (
    example_41, example_42, example_43, example_52, student_registry)
from repro.gallery.student import (
    property_eventual_graduation_mu_la, property_eventual_graduation_mu_lp,
    property_no_student_while_idle)
from repro.mucalc import Fragment, parse_mu


class TestDeterministicRoute:
    def test_ex41_reachability(self, ex41):
        report = verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"))
        assert report.holds
        assert report.route == "det-abstraction"
        assert report.static_condition == "weakly-acyclic"
        assert report.abstraction_stats["states"] == 10

    def test_ex42_constraint_narrows(self, ex42):
        # In Example 4.2 f(a)=a is forced, so Q(a, a) recurs forever on one
        # branch: EG Q(a,a).
        report = verify(
            ex42, parse_mu("nu X. (Q('a', 'a') & (<-> X | [-] false))"))
        assert report.holds

    def test_failing_property(self, ex41):
        report = verify(ex41, parse_mu("nu X. (R('a') & [-] X)"))
        assert not report.holds  # R does not hold initially

    def test_full_muL_rejected(self, ex41):
        formula = parse_mu("E x. mu Z. (R(x) | <-> Z)")
        with pytest.raises(UndecidableFragment) as excinfo:
            verify(ex41, formula)
        assert "4.5" in excinfo.value.theorem

    def test_non_weakly_acyclic_rejected(self, ex43_det):
        with pytest.raises(UndecidableFragment) as excinfo:
            verify(ex43_det, parse_mu("mu Z. (Q('a') | <-> Z)"))
        assert "4.6" in excinfo.value.theorem

    def test_force_overrides_static_check(self, ex43_det):
        # Forcing on a run-unbounded system still diverges (fuse).
        from repro.errors import AbstractionDiverged

        with pytest.raises(AbstractionDiverged):
            verify(ex43_det, parse_mu("mu Z. (Q('a') | <-> Z)"),
                   force=True, max_states=200)

    def test_force_succeeds_on_actually_bounded(self):
        # A not-weakly-acyclic but run-bounded DCDS: the guard blocks the
        # second application, so the f-chain never grows.
        builder = DCDSBuilder(name="bounded-but-cyclic")
        builder.schema("R/1", "Q/1", "Done/0")
        builder.initial("R('a')")
        builder.service("f/1")
        builder.action("go", "R(x) ~> Q(f(x)), Done()",
                       "Q(x) ~> R(x)")
        builder.rule("~(Done())", "go")
        dcds = builder.build()
        with pytest.raises(UndecidableFragment):
            verify(dcds, parse_mu("mu Z. ((E x. live(x) & Q(x)) | <-> Z)"))
        report = verify(dcds,
                        parse_mu("mu Z. ((E x. live(x) & Q(x)) | <-> Z)"),
                        force=True)
        assert report.static_condition == "forced"
        assert report.holds


class TestNondeterministicRoute:
    def test_muLP_accepted(self, students):
        report = verify(students, property_eventual_graduation_mu_lp())
        assert report.holds
        assert report.route == "rcycl"
        assert report.fragment is Fragment.MU_LP

    def test_muLA_rejected(self, students):
        with pytest.raises(UndecidableFragment) as excinfo:
            verify(students, property_eventual_graduation_mu_la())
        assert "5.2" in excinfo.value.theorem

    def test_muLA_forced(self, students):
        # Forcing evaluates the µLA formula over the RCYCL system; for this
        # system the verdict is still True (though no longer certified).
        report = verify(students, property_eventual_graduation_mu_la(),
                        force=True)
        assert report.holds

    def test_safety(self, students):
        report = verify(students, property_no_student_while_idle())
        assert report.holds

    def test_gr_acyclic_route(self, ex43_nondet):
        report = verify(ex43_nondet, parse_mu("mu Z. (Q('a') | <-> Z)"))
        assert report.static_condition == "gr-acyclic"
        assert report.holds

    def test_not_gr_rejected(self, ex52):
        with pytest.raises(UndecidableFragment) as excinfo:
            verify(ex52, parse_mu("mu Z. (Q('a') | <-> Z)"))
        assert "5.5" in excinfo.value.theorem


class TestMixedRoute:
    def test_mixed_semantics_via_rewrite(self):
        """One deterministic and one nondeterministic service (Section 6)."""
        builder = DCDSBuilder(name="mixed")
        builder.schema("R/1", "S/2")
        builder.initial("R('a')")
        builder.service("det_f/1", deterministic=True)
        builder.service("free_g/1", deterministic=False)
        builder.action("go", "R(x) ~> R(x), S(det_f(x), free_g(x))")
        builder.rule("true", "go")
        dcds = builder.build(ServiceSemantics.NONDETERMINISTIC)
        assert dcds.has_mixed_semantics()

        # The Theorem 6.1 memory relation is copied forever, which the
        # syntactic GR analysis conservatively flags as a recall cycle —
        # so certification fails even though this system is state-bounded
        # (det_f is only ever called on the constant 'a').
        formula = parse_mu(
            "mu Z. ((E x, y. live(x) & live(y) & S(x, y)) | <-> Z)")
        with pytest.raises(UndecidableFragment):
            verify(dcds, formula)
        report = verify(dcds, formula, max_states=4000, force=True)
        assert report.holds
        assert report.route.startswith("mixed->")
        assert report.static_condition == "forced"

    def test_report_repr(self, ex41):
        report = verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"))
        assert "HOLDS" in repr(report)
        assert "example41" in repr(report)


class TestCheckingStats:
    def test_compiled_stats_surface(self, ex41):
        report = verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"))
        stats = report.checking_stats
        assert stats["mode"] == "compiled"
        assert stats["iterations"] >= 1
        assert stats["alternation_depth"] == 1
        assert "peak_extension" in stats and "resets" in stats


class TestOnTheFlyRoute:
    def test_reachability_early_stop(self, ex41):
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        offline = verify(ex41, formula)
        fused = verify(ex41, formula, on_the_fly=True)
        assert fused.holds == offline.holds
        assert fused.checking_stats["mode"] == "on-the-fly"
        assert fused.checking_stats["early_stop"] == "witness-found"
        # The witness is found before the full 10-state space is built.
        assert fused.abstraction_stats["states"] \
            <= offline.abstraction_stats["states"]

    def test_invariant_violation_early_stop(self, ex41):
        # R does not hold initially: AG R refuted on the first state.
        formula = parse_mu("nu X. (R('a') & [-] X)")
        fused = verify(ex41, formula, on_the_fly=True)
        assert not fused.holds
        assert fused.checking_stats["early_stop"] == "violation-found"
        assert fused.checking_stats["states_checked"] == 1
        assert fused.abstraction_stats["states"] == 1

    def test_invariant_that_holds_explores_fully(self, ex41):
        # Some value is always live (true on all 10 abstract states).
        formula = parse_mu("nu X. ((E x. live(x)) & [-] X)")
        offline = verify(ex41, formula)
        fused = verify(ex41, formula, on_the_fly=True)
        assert fused.holds == offline.holds
        assert fused.checking_stats["early_stop"] is None
        assert fused.abstraction_stats["states"] \
            == offline.abstraction_stats["states"]

    def test_unrecognized_shape_falls_back_to_compiled(self, ex41):
        formula = parse_mu("nu X. mu Y. ((R('a') & <-> X) | <-> Y)")
        fused = verify(ex41, formula, on_the_fly=True)
        offline = verify(ex41, formula)
        assert fused.holds == offline.holds
        assert fused.checking_stats["mode"] == "compiled"

    def test_nondet_route_on_the_fly(self, students):
        from repro.gallery.student import property_no_student_while_idle

        formula = property_no_student_while_idle()
        offline = verify(students, formula)
        fused = verify(students, formula, on_the_fly=True)
        assert fused.holds == offline.holds
        assert fused.checking_stats["mode"] == "on-the-fly"
        assert fused.route == "rcycl"
