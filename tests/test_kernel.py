"""Parity tests pinning the integer-coded kernel to the reference semantics.

The reference FO evaluator (:mod:`repro.fol.evaluation`) and the reference
execution path (``REPRO_NO_KERNEL=1``) stay authoritative; every kernel
result — compiled query answers, legal substitutions, effect grounding,
call evaluation, and whole transition systems — must be observably
identical to them.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.core import ServiceSemantics
from repro.core.execution import (
    clear_subproblem_caches, do_action, enabled_moves, evaluate_calls,
    ground_effect, legal_substitutions)
from repro.fol.ast import (
    And, Atom, Eq, Exists, Forall, Not, Or, TRUE, exists, forall)
from repro.fol.compile import CompiledQuery, CompileError
from repro.fol.evaluation import answers, evaluation_domain
from repro.gallery import (
    example_41, example_42, example_43, library_system, request_system,
    student_registry)
from repro.relational.coding import CodedInstance, TermTable
from repro.relational.instance import Instance, fact
from repro.relational.kernel import (
    RelationalKernel, clear_kernel_caches, kernel_for)
from repro.relational.values import Var
from repro.semantics import build_det_abstraction, rcycl
from repro.semantics.concrete import explore_concrete
from repro.workloads import chain_dcds, commitment_blowup_dcds, random_dcds

x, y, z = Var("x"), Var("y"), Var("z")


def encode_instance(table: TermTable, instance: Instance) -> CodedInstance:
    grouped = {}
    for current in instance:
        relation = table.code(current.relation)
        grouped.setdefault(relation, []).append(table.codes(current.terms))
    return CodedInstance(
        {relation: tuple(tuples) for relation, tuples in grouped.items()})


def compiled_answer_set(formula, instance, extra=frozenset()):
    table = TermTable()
    plan = CompiledQuery(formula, table)
    coded = encode_instance(table, instance)
    extra_codes = frozenset(table.code(value) for value in extra)
    domain = plan.domain(coded, table, extra_codes)
    found = set()
    for binding in plan.iter_bindings(coded, plan.fresh_regs(), domain):
        found.add(frozenset(
            (var.name, table.term(binding[slot]))
            for var, slot in plan.free_slots.items()))
    return found


def reference_answer_set(formula, instance, extra=frozenset()):
    domain = evaluation_domain(instance, formula, frozenset(extra))
    return {
        frozenset((var.name, theta[var])
                  for var in formula.free_variables())
        for theta in answers(formula, instance, domain=domain)}


FORMULAS = [
    Atom("R", (x, y)),
    And.of(Atom("R", (x, y)), Atom("S", (y,))),
    And.of(Atom("R", (x, y)), Not(Atom("S", (y,)))),
    Or.of(Atom("S", (x,)), Atom("R", (x, x))),
    Exists((y,), And.of(Atom("R", (x, y)), Atom("S", (y,)))),
    Forall((y,), Or.of(Not(Atom("R", (x, y))), Atom("S", (y,)))),
    And.of(Atom("R", (x, y)), Eq(x, "a")),
    Eq(x, y),
    Not(Eq(x, y)),
    exists("y", And.of(Atom("R", (x, y)), exists("x", Atom("R", (y, x))))),
    forall("x", Or.of(Not(Atom("S", (x,))),
                      exists("y", Atom("R", (x, y))))),
    And.of(Atom("T", (1, x, y)), Atom("R", (x, y))),
    Or.of(And.of(Atom("R", (x, y)), Atom("S", (x,))), Eq(x, y)),
    exists("w", Atom("S", (x,))),  # vacuous quantified variable
    Exists((x,), TRUE),
    Not(Atom("S", (x,))),
    Forall((x,), Atom("S", (x,))),
    And.of(Atom("R", (x, y)), Or.of(Atom("S", (x,)), Not(Atom("S", (y,))))),
]

INSTANCES = [
    Instance([fact("R", "a", "b"), fact("R", "b", "c"), fact("R", "c", "c"),
              fact("S", "a"), fact("S", "c"), fact("T", 1, "a", "b")]),
    Instance([fact("S", "a")]),
    Instance([]),
]


class TestCompiledQueryParity:
    @pytest.mark.parametrize("index", range(len(FORMULAS)))
    def test_answers_match_reference(self, index):
        formula = FORMULAS[index]
        for instance in INSTANCES:
            for extra in (frozenset(), frozenset({"zz", 7}),
                          frozenset({"a"})):
                assert compiled_answer_set(formula, instance, extra) \
                    == reference_answer_set(formula, instance, extra), \
                    (formula, instance, extra)

    def test_service_call_in_query_is_rejected(self):
        from repro.relational.values import ServiceCall

        table = TermTable()
        with pytest.raises(CompileError):
            CompiledQuery(Atom("R", (ServiceCall("f", ("a",)), y)), table)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_subproblem_caches()
    yield
    clear_subproblem_caches()


def force_reference(dcds, monkeypatch):
    """A structurally identical DCDS pinned to the reference path."""
    monkeypatch.setenv("REPRO_NO_KERNEL", "1")
    assert kernel_for(dcds) is None
    return dcds


class TestExecutionParity:
    """Kernel vs reference on the execution primitives, state by state."""

    @pytest.mark.parametrize("seed", range(4))
    def test_primitives_on_random_dcds(self, seed, monkeypatch):
        kernel_dcds = random_dcds(seed)
        reference_dcds = force_reference(random_dcds(seed), monkeypatch)
        monkeypatch.delenv("REPRO_NO_KERNEL")
        assert kernel_for(kernel_dcds) is not None

        instance = kernel_dcds.initial
        for rule_k, rule_r in zip(kernel_dcds.process.rules,
                                  reference_dcds.process.rules):
            assert legal_substitutions(kernel_dcds, instance, rule_k) \
                == legal_substitutions(reference_dcds, instance, rule_r)

        moves_k = list(enabled_moves(kernel_dcds, instance))
        moves_r = list(enabled_moves(reference_dcds, instance))
        assert [(action.name, sorted((p.name, repr(v))
                                     for p, v in sigma.items()))
                for action, sigma in moves_k] \
            == [(action.name, sorted((p.name, repr(v))
                                     for p, v in sigma.items()))
                for action, sigma in moves_r]

        for (action_k, sigma_k), (action_r, sigma_r) in zip(
                moves_k, moves_r):
            pending_k = do_action(kernel_dcds, instance, action_k, sigma_k)
            pending_r = do_action(reference_dcds, instance, action_r,
                                  sigma_r)
            assert pending_k == pending_r
            for effect_k, effect_r in zip(action_k.effects,
                                          action_r.effects):
                assert ground_effect(kernel_dcds, instance, effect_k,
                                     sigma_k) \
                    == ground_effect(reference_dcds, instance, effect_r,
                                     sigma_r)
            evaluation = {call: "c0"
                          for call in pending_k.service_calls()}
            assert evaluate_calls(kernel_dcds, pending_k, evaluation) \
                == evaluate_calls(reference_dcds, pending_r, evaluation)


def edge_multiset(ts):
    return Counter(ts.edges())


GALLERY = {
    "example_41": lambda: example_41(),
    "example_42": lambda: example_42(),
    "example_43-nondet": lambda: example_43(
        ServiceSemantics.NONDETERMINISTIC),
    "student_registry": lambda: student_registry(),
    "request_system-slim": lambda: request_system(slim=True),
    "library_system": lambda: library_system(),
}


class TestTransitionSystemParity:
    """Whole constructions, kernel vs reference, bit-identical."""

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_gallery_builds(self, name, monkeypatch):
        kernel_ts = _build(GALLERY[name]())
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        reference_ts = _build(GALLERY[name]())
        assert kernel_ts.states == reference_ts.states
        assert edge_multiset(kernel_ts) == edge_multiset(reference_ts)
        assert {s: kernel_ts.db(s) for s in kernel_ts.states} \
            == {s: reference_ts.db(s) for s in reference_ts.states}
        assert kernel_ts.truncated_states == reference_ts.truncated_states

    @pytest.mark.parametrize("seed", range(3))
    def test_random_nondet_pool(self, seed, monkeypatch):
        def build():
            dcds = random_dcds(
                seed, semantics=ServiceSemantics.NONDETERMINISTIC)
            return explore_concrete(dcds, ["c0", "c1"], depth=3,
                                    max_states=3000)
        kernel_ts = build()
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        reference_ts = build()
        assert kernel_ts.states == reference_ts.states
        assert edge_multiset(kernel_ts) == edge_multiset(reference_ts)

    def test_repeat_build_identical(self):
        """Warm-memo rebuilds replay the exact same transition system."""
        dcds = commitment_blowup_dcds(3)
        first = build_det_abstraction(dcds, 100000)
        second = build_det_abstraction(dcds, 100000)
        assert first.states == second.states
        assert edge_multiset(first) == edge_multiset(second)


def _build(dcds):
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        return build_det_abstraction(dcds, max_states=20000)
    return rcycl(dcds, max_states=20000)


@pytest.mark.skipif(bool(os.environ.get("REPRO_NO_KERNEL")),
                    reason="exercises the kernel itself")
class TestKernelInfrastructure:
    def test_registry_shares_kernel_across_equal_specs(self):
        first = chain_dcds(2)
        second = chain_dcds(2)
        kernel_first = kernel_for(first)
        kernel_second = kernel_for(second)
        assert kernel_first is kernel_second

    def test_distinct_specs_get_distinct_kernels(self):
        assert kernel_for(chain_dcds(2)) is not kernel_for(chain_dcds(3))

    def test_no_kernel_env_attaches_sentinel(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        dcds = chain_dcds(2)
        assert kernel_for(dcds) is None
        # The decision sticks for this object even after unsetting.
        monkeypatch.delenv("REPRO_NO_KERNEL")
        assert kernel_for(dcds) is None

    def test_duplicate_successor_instances_are_shared(self):
        dcds = commitment_blowup_dcds(2)
        ts = build_det_abstraction(dcds, 100000)
        kernel = kernel_for(dcds)
        assert kernel.stats["instances_interned"] > 0
        # Equal database instances across distinct states are the *same*
        # object: hashed once, caches warm for every later arrival.
        representative = {}
        for state in ts.states:
            db = ts.db(state)
            if db == dcds.initial:
                continue  # the initial instance predates the interner
            first = representative.setdefault(db, db)
            assert first is db
        assert len(representative) < len(ts.states)

    def test_clear_caches_releases_interners(self):
        dcds = commitment_blowup_dcds(2)
        build_det_abstraction(dcds, 100000)
        kernel = kernel_for(dcds)
        assert kernel._instances
        clear_kernel_caches()
        assert not kernel._instances
        # And the registry forgets, so a fresh equal spec builds anew.
        assert kernel_for(commitment_blowup_dcds(2)) is not kernel

    def test_pickled_dcds_drops_kernel(self):
        import pickle

        dcds = chain_dcds(2)
        kernel = kernel_for(dcds)
        assert kernel is not None
        restored = pickle.loads(pickle.dumps(dcds))
        assert getattr(restored, "_relational_kernel") is None
        rebuilt = kernel_for(restored)
        assert rebuilt is not None

    def test_direct_kernel_constructor_is_deterministic(self):
        first = RelationalKernel(chain_dcds(2))
        second = RelationalKernel(chain_dcds(2))
        assert first.table.snapshot() == second.table.snapshot()
