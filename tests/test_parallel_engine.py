"""Unit tests for the parallel sharded exploration engine.

The systematic randomized parity sweep lives in ``test_differential.py``;
here we pin the machinery itself: picklability of the relational layer
(with per-process cached hashes dropped), the parallel-safety gate, the
budget semantics firing mid-batch and exactly on a batch boundary, the
observer early-stop path, and the ``spawn`` start method (whose workers
get a *different* ``PYTHONHASHSEED`` — the acid test for stable
cross-process hashing).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import ServiceSemantics
from repro.engine import (
    DetAbstractionGenerator, Explorer, ParallelExplorer, PoolNondetGenerator,
    RcyclGenerator)
from repro.errors import AbstractionDiverged, ReproError
from repro.gallery import example_41, student_registry
from repro.relational.instance import Instance, fact
from repro.relational.values import Fresh, ServiceCall
from repro.engine.generators import DetState, sorted_call_map
from repro.semantics import build_det_abstraction, explore_concrete
from repro.workloads import commitment_blowup_dcds


# The full Counter-based build comparison (edge *multiset*, not just the
# edge set + count, which could not detect swapped multiplicities).
from test_differential import assert_isomorphic_builds as assert_bit_identical


# ---------------------------------------------------------------------------
# Cross-process pickling
# ---------------------------------------------------------------------------

class TestPickling:
    def test_service_call_roundtrip_drops_cached_hash(self):
        call = ServiceCall("f", ("a", 1))
        hash(call), repr(call)  # populate caches
        blob = pickle.dumps(call, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"_hash" not in blob
        back = pickle.loads(blob)
        assert back == call and hash(back) == hash(call)

    def test_fact_roundtrip_drops_cached_hash(self):
        current = fact("R", "a", ServiceCall("f", ("a",)))
        hash(current), current.sort_key()
        blob = pickle.dumps(current, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"_hash" not in blob and b"_sort_key" not in blob
        back = pickle.loads(blob)
        assert back == current and hash(back) == hash(current)

    def test_instance_roundtrip_drops_lazy_views(self):
        instance = Instance.of(fact("R", "a", 1), fact("S", "b"))
        hash(instance), instance.active_domain(), instance.index("R", 0)
        blob = pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"_adom" not in blob and b"_indexes" not in blob
        back = pickle.loads(blob)
        assert back == instance and hash(back) == hash(instance)
        assert back.active_domain() == instance.active_domain()

    def test_det_state_roundtrip(self):
        instance = Instance.of(fact("R", "a"))
        state = DetState(
            instance, sorted_call_map({ServiceCall("f", ("a",)): Fresh(0)}))
        hash(state)
        back = pickle.loads(pickle.dumps(state))
        assert back == state and hash(back) == hash(state)
        assert back.map_dict() == state.map_dict()

    def test_fingerprint_survives_roundtrip(self):
        from repro.engine import instance_fingerprint
        instance = Instance.of(fact("R", "a", 1))
        fingerprint = instance_fingerprint(instance, frozenset(["a"]))
        back = pickle.loads(pickle.dumps(instance))
        assert instance_fingerprint(back, frozenset(["a"])) == fingerprint

    def test_generator_configs_picklable(self):
        dcds = example_41()
        for generator in (DetAbstractionGenerator(dcds),
                          PoolNondetGenerator(dcds, ["a", Fresh(5)])):
            back = pickle.loads(pickle.dumps(generator))
            assert type(back) is type(generator)


# ---------------------------------------------------------------------------
# Parallel-safety gate and parameter validation
# ---------------------------------------------------------------------------

class TestGate:
    def test_rcycl_generator_rejected(self):
        dcds = example_41(ServiceSemantics.NONDETERMINISTIC)
        explorer = ParallelExplorer(dcds.schema, workers=2)
        with pytest.raises(ReproError, match="not parallel-safe"):
            explorer.run(RcyclGenerator(dcds))

    def test_invalid_workers(self):
        with pytest.raises(ReproError, match="workers"):
            ParallelExplorer(example_41().schema, workers=0)

    def test_invalid_batch_size(self):
        with pytest.raises(ReproError, match="batch_size"):
            ParallelExplorer(example_41().schema, batch_size=0)

    def test_parallel_stats_recorded(self):
        dcds = example_41()
        ts = build_det_abstraction(dcds, workers=2, batch_size=2)
        parallel = ts.exploration_stats["parallel"]
        assert parallel["workers"] == 2
        assert parallel["batch_size"] == 2
        assert parallel["batches"] >= 1


# ---------------------------------------------------------------------------
# Budget semantics mid-batch (truncate / raise / exact boundary)
# ---------------------------------------------------------------------------

class TestBudgets:
    def test_truncate_mid_batch_no_leaked_states(self):
        """A worker's speculative results must not leak past the budget."""
        dcds = commitment_blowup_dcds(4)  # 53 states when unconstrained
        for budget in (5, 10, 25):
            sequential = Explorer(
                dcds.schema, max_states=budget, on_budget="truncate"
            ).run(DetAbstractionGenerator(dcds)).transition_system
            parallel = ParallelExplorer(
                dcds.schema, max_states=budget, on_budget="truncate",
                workers=2, batch_size=4,
            ).run(DetAbstractionGenerator(dcds)).transition_system
            assert_bit_identical(sequential, parallel)
            assert len(parallel) == budget + 1  # seed convention: trip on >
            assert parallel.exploration_stats["diverged"] is True

    def test_truncate_budget_sweep_covers_batch_boundaries(self):
        """Every (budget, batch_size) alignment, incl. exact boundaries."""
        dcds = student_registry()
        pool = ["idle", Fresh(70)]
        total = len(explore_concrete(dcds, pool, depth=3))
        for batch_size in (1, 2, 4):
            for budget in range(1, total + 1, 2):
                sequential = Explorer(
                    dcds.schema, max_states=budget, max_depth=3,
                    on_budget="truncate",
                ).run(PoolNondetGenerator(dcds, pool)).transition_system
                parallel = ParallelExplorer(
                    dcds.schema, max_states=budget, max_depth=3,
                    on_budget="truncate", workers=2, batch_size=batch_size,
                ).run(PoolNondetGenerator(dcds, pool)).transition_system
                assert_bit_identical(sequential, parallel)

    def test_budget_exactly_on_batch_boundary(self):
        """Trip on the last successor applied from a full batch."""
        dcds = commitment_blowup_dcds(4)
        # Level 1 holds 52 successors of the initial state; batch_size 13
        # makes budgets 13/26/39 land exactly on batch boundaries of the
        # follow-up level-1 expansions.
        for budget in (13, 26, 39):
            sequential = Explorer(
                dcds.schema, max_states=budget, on_budget="truncate"
            ).run(DetAbstractionGenerator(dcds)).transition_system
            parallel = ParallelExplorer(
                dcds.schema, max_states=budget, on_budget="truncate",
                workers=4, batch_size=13,
            ).run(DetAbstractionGenerator(dcds)).transition_system
            assert_bit_identical(sequential, parallel)

    def test_speculative_discard_counted_without_leaking(self):
        """In-flight batches discarded on a budget trip are counted, and
        none of their states leak into the transition system."""
        dcds = student_registry()
        pool = ["idle", Fresh(70), Fresh(71)]
        sequential = Explorer(
            dcds.schema, max_states=5, max_depth=4, on_budget="truncate"
        ).run(PoolNondetGenerator(dcds, pool)).transition_system
        parallel = ParallelExplorer(
            dcds.schema, max_states=5, max_depth=4, on_budget="truncate",
            workers=2, batch_size=1,
        ).run(PoolNondetGenerator(dcds, pool)).transition_system
        assert_bit_identical(sequential, parallel)
        discarded = parallel.exploration_stats["parallel"][
            "speculative_states_discarded"]
        assert discarded > 0

    def test_raise_mid_batch_matches_sequential_partial(self):
        dcds = commitment_blowup_dcds(4)
        with pytest.raises(AbstractionDiverged) as sequential_error:
            Explorer(
                dcds.schema, max_states=10, on_budget="raise"
            ).run(DetAbstractionGenerator(dcds))
        with pytest.raises(AbstractionDiverged) as parallel_error:
            ParallelExplorer(
                dcds.schema, max_states=10, on_budget="raise",
                workers=2, batch_size=3,
            ).run(DetAbstractionGenerator(dcds))
        assert parallel_error.value.partial_states \
            == sequential_error.value.partial_states

    def test_builder_raise_path(self):
        dcds = commitment_blowup_dcds(4)
        with pytest.raises(AbstractionDiverged):
            build_det_abstraction(dcds, max_states=10, workers=2)


# ---------------------------------------------------------------------------
# Observer early stop
# ---------------------------------------------------------------------------

class TestObserver:
    def test_early_stop_parity(self):
        dcds = example_41()

        def make_observer():
            seen = []

            def observer(state, instance):
                seen.append(state)
                return "enough" if len(seen) >= 4 else None
            return observer

        sequential = Explorer(
            dcds.schema, observer=make_observer()
        ).run(DetAbstractionGenerator(dcds)).transition_system
        parallel = ParallelExplorer(
            dcds.schema, observer=make_observer(), workers=2, batch_size=2,
        ).run(DetAbstractionGenerator(dcds)).transition_system
        assert_bit_identical(sequential, parallel)
        assert parallel.exploration_stats["early_stop"] == "enough"

    def test_observer_stop_on_initial(self):
        dcds = example_41()
        sequential = Explorer(
            dcds.schema, observer=lambda s, i: "now"
        ).run(DetAbstractionGenerator(dcds)).transition_system
        parallel = ParallelExplorer(
            dcds.schema, observer=lambda s, i: "now", workers=2,
        ).run(DetAbstractionGenerator(dcds)).transition_system
        assert_bit_identical(sequential, parallel)
        assert len(parallel) == 1


# ---------------------------------------------------------------------------
# Start methods
# ---------------------------------------------------------------------------

class TestStartMethods:
    def test_spawn_workers_differ_in_hash_seed_yet_agree(self):
        """``spawn`` children get fresh PYTHONHASHSEEDs: if any cached hash
        crossed the boundary, dedup in the coordinator would corrupt."""
        import multiprocessing
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn unavailable")
        dcds = example_41()
        sequential = build_det_abstraction(dcds)
        parallel = build_det_abstraction(dcds, workers=2, batch_size=2)
        assert_bit_identical(sequential, parallel)
        spawned = ParallelExplorer(
            dcds.schema, name=sequential.name, max_states=20000,
            workers=2, batch_size=2, start_method="spawn",
        ).run(DetAbstractionGenerator(dcds)).transition_system
        assert_bit_identical(sequential, spawned)
