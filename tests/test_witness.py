"""Witness/counterexample certificates and the independent replay oracle.

Three layers of guarantees, each pinned here:

* **Soundness** — every certificate ``verify()`` emits for the gallery
  systems and for a 20-case seeded random sweep replays green through
  :mod:`repro.mucalc.certify`, which re-evaluates every step without the
  producing engine.
* **Minimality** — certificates are shortest certifying runs: no strict
  prefix (even with ranks re-fitted) passes the oracle, and the oracle's
  own independent BFS agrees on the length.
* **Determinism** — extraction is a pure function of the transition
  system, so certificates are bit-identical across the kernel /
  vector / frontier-batch kill switches and across worker counts.

Pipeline-level tests force ``REPRO_NO_WITNESS`` off for their block so
the suite also passes under the CI mirror that runs tier-1 with the kill
switch ambient-on; the switch itself is tested explicitly.
"""

from __future__ import annotations

import dataclasses

import pytest

from test_differential import (
    forced_env, invariant_formula, reachability_formula)

from repro.core import ServiceSemantics
from repro.core.execution import clear_subproblem_caches
from repro.gallery.student import (
    property_eventual_graduation_mu_lp, property_no_student_while_idle)
from repro.mucalc import parse_mu
from repro.mucalc.certify import (
    CertificateError, replay, state_holds, validate)
from repro.mucalc.checker import ModelChecker
from repro.mucalc.witness import (
    Violation, Witness, extract, render_certificate)
from repro.pipeline import verify
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem
from repro.viz import certificate_to_dot
from repro.workloads import random_dcds

MAX_STATES = 3000


def witnesses_on():
    """Force certificate extraction on for the block (see module doc)."""
    return forced_env("REPRO_NO_WITNESS", None)


def refit_prefix(certificate, length):
    """The strict prefix of ``length`` steps with ranks re-fitted so it
    survives the structural rank check and fails on *semantics* only."""
    steps = certificate.steps[:length]
    refitted = tuple(
        dataclasses.replace(step, rank=len(steps) - 1 - i)
        for i, step in enumerate(steps))
    return dataclasses.replace(certificate, steps=refitted)


# ---------------------------------------------------------------------------
# Gallery battery
# ---------------------------------------------------------------------------

GALLERY_CASES = [
    # (fixture, formula, expected certificate kind)
    ("ex41", "mu Z. (R('a') | <-> Z)", "witness"),
    ("ex41", "nu X. (R('a') & [-] X)", "violation"),
    ("ex41", "nu X. (~R('a') & [-] X)", "violation"),
    ("ex43_nondet", "mu Z. (Q('a') | <-> Z)", "witness"),
    ("students",
     "mu Z. ((E x, y. live(x) & live(y) & Grad(x, y)) | <-> Z)",
     "witness"),
    ("students", "nu X. (Status('idle') & [-] X)", "violation"),
]


class TestGalleryCertificates:
    @pytest.mark.parametrize("fixture,formula_text,kind", GALLERY_CASES,
                             ids=[f"{f}-{k}{i}" for i, (f, _, k)
                                  in enumerate(GALLERY_CASES)])
    def test_certificate_replays_green(self, request, fixture, formula_text,
                                       kind):
        dcds = request.getfixturevalue(fixture)
        formula = parse_mu(formula_text)
        with witnesses_on():
            report = verify(dcds, formula, max_states=MAX_STATES)
        certificate = report.witness or report.violation
        assert certificate is not None
        assert certificate.kind == kind
        assert (report.witness is not None) == report.holds
        # The independent oracle accepts it (validate raises on failure).
        validate(report.transition_system, certificate)
        # The run starts at the initial state and is rank-annotated.
        assert certificate.steps[0].state == report.transition_system.initial
        assert certificate.steps[-1].rank == 0
        # It renders (both textual and DOT forms reference the run).
        rendered = render_certificate(report.transition_system, certificate)
        assert certificate.kind in rendered

    @pytest.mark.parametrize("fixture,formula_text,kind", GALLERY_CASES,
                             ids=[f"{f}-{k}{i}" for i, (f, _, k)
                                  in enumerate(GALLERY_CASES)])
    def test_no_strict_prefix_certifies(self, request, fixture, formula_text,
                                        kind):
        dcds = request.getfixturevalue(fixture)
        formula = parse_mu(formula_text)
        with witnesses_on():
            report = verify(dcds, formula, max_states=MAX_STATES)
        certificate = report.witness or report.violation
        assert certificate is not None
        ts = report.transition_system
        for length in range(1, len(certificate.steps)):
            # Raw prefix: stale ranks fail the structural check.
            raw = dataclasses.replace(certificate,
                                      steps=certificate.steps[:length])
            if length < len(certificate.steps):
                assert not replay(ts, raw).ok
            # Re-fitted prefix: must fail on semantics/minimality alone.
            assert not replay(ts, refit_prefix(certificate, length)).ok

    def test_unrecognized_shape_yields_no_certificate(self, ex42):
        # AG-with-deadlock-escape is not the plain invariant shape.
        formula = parse_mu("nu X. (Q('a', 'a') & (<-> X | [-] false))")
        with witnesses_on():
            report = verify(ex42, formula, max_states=MAX_STATES)
        assert report.witness is None and report.violation is None
        assert report.checking_stats["witness"]["outcome"] \
            == "unrecognized-shape"

    def test_non_state_local_body_yields_no_certificate(self, ex41):
        # EF with a modal body: the shape matches, but the body is not
        # evaluable state-locally, so no certificate can be checked
        # independently.
        formula = parse_mu("mu Z. (<-> R('a') | <-> Z)")
        with witnesses_on():
            report = verify(ex41, formula, max_states=MAX_STATES)
        assert report.witness is None and report.violation is None
        assert report.checking_stats["witness"]["outcome"] \
            == "non-state-local-body"

    def test_holding_nested_invariant_reports_holds(self, students):
        # The graduation property (nested µ in the body) holds; the
        # verdict-first gate reports before body locality matters.
        with witnesses_on():
            report = verify(students, property_eventual_graduation_mu_lp(),
                            max_states=MAX_STATES)
        assert report.holds
        assert report.witness is None and report.violation is None
        assert report.checking_stats["witness"]["outcome"] \
            == "invariant-holds"

    def test_holding_invariant_reports_reason(self, students):
        with witnesses_on():
            report = verify(students, property_no_student_while_idle(),
                            max_states=MAX_STATES)
        assert report.holds
        assert report.witness is None and report.violation is None
        assert report.checking_stats["witness"]["outcome"] \
            == "invariant-holds"


# ---------------------------------------------------------------------------
# Oracle independence: tampered certificates are rejected
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def ex41_witness_report(ex41):
    with witnesses_on():
        return verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"),
                      max_states=MAX_STATES)


class TestOracleRejectsTampering:
    def test_wrong_action_label(self, ex41_witness_report):
        report = ex41_witness_report
        cert = report.witness
        steps = list(cert.steps)
        steps[-1] = dataclasses.replace(steps[-1], action="not-an-action")
        tampered = dataclasses.replace(cert, steps=tuple(steps))
        result = replay(report.transition_system, tampered)
        assert not result.ok
        assert any("edge" in failure for failure in result.failures)

    def test_foreign_state_spliced_in(self, ex41_witness_report):
        report = ex41_witness_report
        cert = report.witness
        ts = report.transition_system
        foreign = sorted(ts.states - set(cert.states), key=repr)[0]
        steps = list(cert.steps)
        steps[-1] = dataclasses.replace(steps[-1], state=foreign)
        tampered = dataclasses.replace(cert, steps=tuple(steps))
        assert not replay(ts, tampered).ok

    def test_forged_call_bindings(self, ex41_witness_report):
        report = ex41_witness_report
        cert = report.witness
        minted = next((i for i, step in enumerate(cert.steps)
                       if step.call_bindings), None)
        assert minted is not None, "expected a step minting a service call"
        steps = list(cert.steps)
        steps[minted] = dataclasses.replace(steps[minted], call_bindings=())
        tampered = dataclasses.replace(cert, steps=tuple(steps))
        result = replay(report.transition_system, tampered)
        assert not result.ok
        assert any("call" in failure for failure in result.failures)

    def test_wrong_certificate_class(self, ex41_witness_report):
        report = ex41_witness_report
        cert = report.witness
        flipped = Violation(formula=cert.formula, body=cert.body,
                            guard=cert.guard, steps=cert.steps)
        assert not replay(report.transition_system, flipped).ok

    def test_validate_raises(self, ex41_witness_report):
        report = ex41_witness_report
        cert = report.witness
        truncated = dataclasses.replace(cert, steps=cert.steps[:1])
        with pytest.raises(CertificateError):
            validate(report.transition_system, truncated)


# ---------------------------------------------------------------------------
# Guarded (µLP) shapes over hand-built systems
# ---------------------------------------------------------------------------

def guarded_ts():
    """s0 --> s1 (has goal, but 'a' dead) and s0 --> s2 --> s3 (both keep
    'a' live, goal at s3): the guarded witness must take the long road."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, "s0", name="guarded")
    ts.add_state("s0", Instance([fact("P", "a")]))
    ts.add_state("s1", Instance([fact("Q", "goal")]))
    ts.add_state("s2", Instance([fact("P", "a")]))
    ts.add_state("s3", Instance([fact("P", "a"), fact("Q", "goal")]))
    ts.add_edge("s0", "s1", "jump")
    ts.add_edge("s0", "s2", "step")
    ts.add_edge("s1", "s1")
    ts.add_edge("s2", "s3", "step")
    ts.add_edge("s3", "s3")
    return ts


class TestGuardedShapes:
    def test_guarded_witness_avoids_dead_guard_states(self):
        ts = guarded_ts()
        formula = parse_mu("mu Z. (Q('goal') | <-> (live('a') & Z))")
        holds = ModelChecker(ts).models(formula)
        assert holds
        outcome = extract(ts, formula, holds)
        certificate = outcome.certificate
        assert isinstance(certificate, Witness)
        # The 1-step run through s1 satisfies the body but kills the
        # guard; the certificate must be the 2-step guard-live run.
        assert certificate.states == ("s0", "s2", "s3")
        validate(ts, certificate)

    def test_guarded_violation_with_dead_guard_terminal(self):
        ts = guarded_ts()
        # AG_live: fails because s1 (reachable in one step) drops 'a'.
        formula = parse_mu("nu Z. (P('a') & [-] (live('a') & Z))")
        holds = ModelChecker(ts).models(formula)
        assert not holds
        outcome = extract(ts, formula, holds)
        certificate = outcome.certificate
        assert isinstance(certificate, Violation)
        validate(ts, certificate)
        # Shortest violation: one step into either body-violating or
        # guard-dead territory (s1 is both).
        assert certificate.length == 1

    def test_initial_dead_guard_forces_a_step(self):
        # Corner: the *initial* state already has a dead guard but a
        # healthy body. A violating run still needs >= 1 step (the
        # initial state is not "entered"), so extraction must force one.
        schema = DatabaseSchema.of("P/1")
        ts = TransitionSystem(schema, "s0", name="corner")
        ts.add_state("s0", Instance([fact("P", "a")]))
        ts.add_edge("s0", "s0", "loop")
        formula = parse_mu("nu Z. (P('a') & [-] (live('g') & Z))")
        holds = ModelChecker(ts).models(formula)
        assert not holds
        outcome = extract(ts, formula, holds)
        certificate = outcome.certificate
        assert isinstance(certificate, Violation)
        assert certificate.length == 1
        assert certificate.states == ("s0", "s0")  # forced self-loop
        validate(ts, certificate)

    def test_non_ground_guard_is_not_certified(self):
        ts = guarded_ts()
        formula = parse_mu("mu Z. (Q('goal') | <-> (live(x) & Z))")
        outcome = extract(ts, formula, True)
        assert outcome.certificate is None
        assert outcome.reason == "non-ground-guard"


# ---------------------------------------------------------------------------
# Determinism across builds
# ---------------------------------------------------------------------------

BUILD_VARIANTS = (
    ("REPRO_NO_KERNEL", "1"),
    ("REPRO_NO_VECTOR", "1"),
    ("REPRO_NO_BATCH", "1"),
)


def certificate_under(dcds, formula, env_name=None, env_value=None,
                      workers=None):
    with witnesses_on():
        if env_name is None:
            clear_subproblem_caches()
            report = verify(dcds, formula, max_states=MAX_STATES,
                            workers=workers)
        else:
            with forced_env(env_name, env_value):
                clear_subproblem_caches()
                report = verify(dcds, formula, max_states=MAX_STATES,
                                workers=workers)
    clear_subproblem_caches()
    certificate = report.witness or report.violation
    assert certificate is not None
    return certificate


class TestDeterminism:
    def test_bit_identical_across_kill_switches(self, ex41):
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        baseline = certificate_under(ex41, formula)
        for name, value in BUILD_VARIANTS:
            assert certificate_under(ex41, formula, name, value) \
                == baseline, name

    def test_bit_identical_across_worker_counts(self):
        dcds = random_dcds(1, shape="weakly-acyclic",
                           semantics=ServiceSemantics.DETERMINISTIC)
        formula = reachability_formula(dcds)
        baseline = certificate_under(dcds, formula)
        for workers in (1, 2, 4):
            assert certificate_under(dcds, formula, workers=workers) \
                == baseline, workers

    def test_violations_bit_identical_across_kill_switches(self, ex41):
        formula = parse_mu("nu X. (R('a') & [-] X)")
        baseline = certificate_under(ex41, formula)
        for name, value in BUILD_VARIANTS:
            assert certificate_under(ex41, formula, name, value) \
                == baseline, name


# ---------------------------------------------------------------------------
# 20-case seeded random sweep (acceptance criterion)
# ---------------------------------------------------------------------------

SWEEP_CASES = [
    pytest.param(seed, shape, semantics,
                 id=f"seed{seed}-{shape}-{semantics.value}")
    for seed in range(10)
    for shape, semantics in (
        ("weakly-acyclic", ServiceSemantics.DETERMINISTIC),
        ("gr-acyclic", ServiceSemantics.NONDETERMINISTIC))
]


class TestSeededSweep:
    @pytest.mark.parametrize("seed,shape,semantics", SWEEP_CASES)
    def test_every_certificate_replays(self, seed, shape, semantics):
        from repro.errors import UndecidableFragment, VerificationError
        dcds = random_dcds(seed, shape=shape, semantics=semantics)
        emitted = 0
        for factory in (reachability_formula, invariant_formula):
            formula = factory(dcds)
            with witnesses_on():
                try:
                    report = verify(dcds, formula, max_states=MAX_STATES)
                except (UndecidableFragment, VerificationError):
                    continue
            certificate = report.witness or report.violation
            if certificate is None:
                continue
            emitted += 1
            validate(report.transition_system, certificate)
            assert (report.witness is not None) == report.holds
        # The invariant pack is decidable and violated on every sweep
        # workload, so each case must certify at least once.
        assert emitted >= 1


# ---------------------------------------------------------------------------
# On-the-fly extraction and the explorer retention contract
# ---------------------------------------------------------------------------

class TestOnTheFly:
    def test_partial_ts_contains_minimal_witness(self, ex41):
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        with witnesses_on():
            offline = verify(ex41, formula, max_states=MAX_STATES)
            fused = verify(ex41, formula, max_states=MAX_STATES,
                           on_the_fly=True)
        assert fused.holds and offline.holds
        assert fused.witness is not None
        # The fused run stops early, yet its partial transition system
        # retains the full certifying run (the explorer interns a state
        # and its incoming edge before the observer fires).
        assert len(fused.transition_system) \
            <= len(offline.transition_system)
        validate(fused.transition_system, fused.witness)
        # Both certificates are minimal, hence equally long — the runs
        # themselves may differ (BFS discovery vs repr tie-break).
        assert fused.witness.length == offline.witness.length

    def test_fused_violation_replays(self, ex41):
        formula = parse_mu("nu X. (R('a') & [-] X)")
        with witnesses_on():
            fused = verify(ex41, formula, max_states=MAX_STATES,
                           on_the_fly=True)
        assert not fused.holds
        assert fused.violation is not None
        validate(fused.transition_system, fused.violation)


# ---------------------------------------------------------------------------
# Kill switch
# ---------------------------------------------------------------------------

class TestKillSwitch:
    def test_no_witness_disables_extraction_without_drift(self, ex41):
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        with witnesses_on():
            enabled = verify(ex41, formula, max_states=MAX_STATES)
        with forced_env("REPRO_NO_WITNESS", "1"):
            disabled = verify(ex41, formula, max_states=MAX_STATES)
        assert enabled.witness is not None
        assert disabled.witness is None and disabled.violation is None
        assert disabled.checking_stats["witness"] == {"enabled": False}
        # Zero behavioral drift: verdict, route, and build unchanged.
        assert disabled.holds == enabled.holds
        assert disabled.route == enabled.route
        assert disabled.abstraction_stats["states"] \
            == enabled.abstraction_stats["states"]
        assert disabled.abstraction_stats["edges"] \
            == enabled.abstraction_stats["edges"]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

class TestRendering:
    def test_dot_highlights_the_run(self, ex41_witness_report):
        report = ex41_witness_report
        dot = certificate_to_dot(report.transition_system, report.witness)
        assert "color=red, penwidth=2" in dot
        assert "peripheries=2" in dot

    def test_dot_forces_path_states_past_truncation(self,
                                                    ex41_witness_report):
        report = ex41_witness_report
        dot = certificate_to_dot(report.transition_system, report.witness,
                                 max_states=1)
        # Every state on the run is rendered even though max_states=1.
        assert dot.count("color=red, penwidth=2") \
            >= len(report.witness.states)

    def test_render_lists_minted_calls(self, ex41_witness_report):
        report = ex41_witness_report
        rendered = render_certificate(report.transition_system,
                                      report.witness)
        assert "minted" in rendered
        assert "discharges" in rendered


# ---------------------------------------------------------------------------
# The independent state-local evaluator
# ---------------------------------------------------------------------------

class TestStateHolds:
    def test_rejects_unguarded_quantifier(self):
        ts = guarded_ts()
        with pytest.raises(CertificateError):
            state_holds(parse_mu("E x. P(x)"), ts.db("s0"))

    def test_guarded_quantifier_enumerates_adom(self):
        ts = guarded_ts()
        assert state_holds(parse_mu("E x. (live(x) & P(x))"), ts.db("s0"))
        assert not state_holds(parse_mu("E x. (live(x) & Q(x))"),
                               ts.db("s0"))

    def test_rejects_modal_operators(self):
        ts = guarded_ts()
        with pytest.raises(CertificateError):
            state_holds(parse_mu("<-> P('a')"), ts.db("s0"))
