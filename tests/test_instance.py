"""Database instances: set behaviour, active domains, call maps."""

import pytest

from repro.errors import InstanceError
from repro.relational import (
    DatabaseSchema, Fact, Instance, ServiceCall, fact)


@pytest.fixture
def small():
    return Instance([fact("R", "a", "b"), fact("S", "b")])


class TestConstruction:
    def test_of(self):
        instance = Instance.of(fact("R", 1))
        assert fact("R", 1) in instance

    def test_empty(self):
        assert len(Instance.empty()) == 0

    def test_tuple_form(self):
        instance = Instance([("R", ("a",))])
        assert fact("R", "a") in instance

    def test_bad_fact(self):
        with pytest.raises(InstanceError):
            Instance(["garbage"])

    def test_duplicates_collapse(self):
        assert len(Instance([fact("R", 1), fact("R", 1)])) == 1


class TestSetBehaviour:
    def test_union(self, small):
        merged = small | Instance([fact("T", "c")])
        assert len(merged) == 3

    def test_intersection(self, small):
        common = small & Instance([fact("R", "a", "b")])
        assert common == Instance([fact("R", "a", "b")])

    def test_difference(self, small):
        rest = small - Instance([fact("S", "b")])
        assert rest == Instance([fact("R", "a", "b")])

    def test_equality_and_hash(self, small):
        same = Instance([fact("S", "b"), fact("R", "a", "b")])
        assert small == same
        assert hash(small) == hash(same)

    def test_repr_sorted(self, small):
        assert repr(small) == "{R('a', 'b'), S('b')}"


class TestActiveDomain:
    def test_adom(self, small):
        assert small.active_domain() == frozenset({"a", "b"})

    def test_adom_includes_call_arguments(self):
        call = ServiceCall("f", ("x-val",))
        instance = Instance([Fact("R", (call, "a"))])
        assert instance.active_domain() == frozenset({"x-val", "a"})

    def test_relations_and_tuples(self, small):
        assert small.relations() == frozenset({"R", "S"})
        assert small.tuples("R") == frozenset({("a", "b")})
        assert small.tuples("missing") == frozenset()

    def test_signature(self, small):
        assert small.signature() == {"R": 1, "S": 1}


class TestCallMaps:
    def test_is_concrete(self, small):
        assert small.is_concrete()
        pending = Instance([Fact("R", (ServiceCall("f", ("a",)), "b"))])
        assert not pending.is_concrete()

    def test_service_calls(self):
        call = ServiceCall("f", ("a",))
        pending = Instance([Fact("R", (call,)), fact("S", "b")])
        assert pending.service_calls() == frozenset({call})

    def test_apply_call_map(self):
        call = ServiceCall("f", ("a",))
        pending = Instance([Fact("R", (call, "a"))])
        resolved = pending.apply_call_map({call: "v"})
        assert resolved == Instance([fact("R", "v", "a")])

    def test_apply_call_map_missing(self):
        call = ServiceCall("f", ("a",))
        pending = Instance([Fact("R", (call,))])
        with pytest.raises(InstanceError):
            pending.apply_call_map({})


class TestSchemaConformance:
    def test_conforms(self, small):
        schema = DatabaseSchema.of("R/2", "S/1")
        assert small.conforms_to(schema)
        small.validate(schema)

    def test_wrong_arity(self, small):
        schema = DatabaseSchema.of("R/1", "S/1")
        assert not small.conforms_to(schema)
        with pytest.raises(InstanceError):
            small.validate(schema)

    def test_undeclared_relation(self, small):
        schema = DatabaseSchema.of("R/2")
        with pytest.raises(InstanceError):
            small.validate(schema)


class TestTransformations:
    def test_rename(self, small):
        renamed = small.rename({"a": "x", "b": "y"})
        assert renamed == Instance([fact("R", "x", "y"), fact("S", "y")])

    def test_rename_partial(self, small):
        renamed = small.rename({"a": "x"})
        assert fact("R", "x", "b") in renamed

    def test_restrict(self, small):
        assert small.restrict(["S"]) == Instance([fact("S", "b")])

    def test_sorted_facts_deterministic(self):
        facts = [fact("B", 2), fact("A", 1), fact("B", 1)]
        assert [f.relation for f in Instance(facts).sorted_facts()] == \
            ["A", "B", "B"]
