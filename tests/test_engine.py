"""Unit tests for the exploration engine: Explorer, interning, fingerprints,
sorted transition-system accessors, stats plumbing, and the short-circuiting
legality check."""

import pytest

from repro.core import ServiceSemantics
from repro.core.execution import is_legal, legal_substitutions
from repro.engine import (
    DetAbstractionGenerator, Explorer, StateInterner, instance_fingerprint)
from repro.engine.explorer import (
    ExplorationBudgetExceeded, SuccessorGenerator)
from repro.errors import AbstractionDiverged, ReproError
from repro.gallery import example_41, example_43, library_system
from repro.mucalc import parse_mu
from repro.pipeline import verify
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Fresh, Param
from repro.semantics import TransitionSystem, build_det_abstraction


class CountingGenerator(SuccessorGenerator):
    """A chain 0 -> 1 -> ... -> length with single-fact databases."""

    def __init__(self, length, branching=1):
        self.length = length
        self.branching = branching
        self.schema = DatabaseSchema.of("R/1")

    def _db(self, n):
        return Instance([fact("R", n)])

    def initial_state(self):
        return 0, self._db(0)

    def successors(self, state):
        if state >= self.length:
            return
        for _ in range(self.branching):
            yield state + 1, self._db(state + 1), "step"


class TestExplorer:
    def test_explores_whole_chain(self):
        generator = CountingGenerator(5)
        result = Explorer(generator.schema).run(generator)
        assert len(result.transition_system) == 6
        assert not result.diverged
        assert result.stats.growth == [1, 1, 1, 1, 1, 1]

    def test_max_depth_truncates(self):
        generator = CountingGenerator(10)
        result = Explorer(generator.schema, max_depth=3).run(generator)
        ts = result.transition_system
        assert len(ts) == 4
        assert ts.truncated_states == {3}

    def test_budget_raise(self):
        generator = CountingGenerator(100)
        explorer = Explorer(generator.schema, max_states=5)
        with pytest.raises(AbstractionDiverged) as excinfo:
            explorer.run(generator)
        assert excinfo.value.partial_states == 6

    def test_budget_truncate(self):
        generator = CountingGenerator(100)
        explorer = Explorer(generator.schema, max_states=5,
                            on_budget="truncate")
        result = explorer.run(generator)
        assert result.diverged
        assert result.transition_system.truncated_states

    def test_generator_budget_signal(self):
        class ImpatientGenerator(CountingGenerator):
            def successors(self, state):
                if state >= 2:
                    raise ExplorationBudgetExceeded("enough")
                yield from CountingGenerator.successors(self, state)

        generator = ImpatientGenerator(100)
        result = Explorer(generator.schema,
                          on_budget="truncate").run(generator)
        assert result.diverged

    def test_dfs_matches_bfs_states(self):
        dcds = example_41()
        bfs = Explorer(dcds.schema).run(DetAbstractionGenerator(dcds))
        dfs = Explorer(dcds.schema,
                       strategy="dfs").run(DetAbstractionGenerator(dcds))
        assert bfs.transition_system.states == dfs.transition_system.states

    def test_rejects_unknown_settings(self):
        schema = DatabaseSchema.of("R/1")
        with pytest.raises(ReproError):
            Explorer(schema, on_budget="explode")
        with pytest.raises(ReproError):
            Explorer(schema, strategy="random")

    def test_stats_recorded_on_transition_system(self):
        ts = build_det_abstraction(example_41())
        stats = ts.exploration_stats
        assert stats["explored_states"] == len(ts)
        assert stats["frontier_peak"] >= 1
        assert stats["states_per_sec"] >= 0
        assert tuple(stats["growth_trace"]) == (1, 5, 4)

    def test_stats_surface_in_verification_report(self):
        report = verify(example_41(), parse_mu("true"))
        assert report.abstraction_stats["states"] == 10
        assert "states_per_sec" in report.abstraction_stats
        assert "frontier_peak" in report.abstraction_stats


class TestFingerprint:
    def test_isomorphic_instances_share_fingerprint(self):
        first = Instance([fact("R", Fresh(0)), fact("Q", Fresh(0), "a")])
        second = Instance([fact("R", Fresh(7)), fact("Q", Fresh(7), "a")])
        assert instance_fingerprint(first) == instance_fingerprint(second)

    def test_fixed_values_distinguish(self):
        first = Instance([fact("R", "a")])
        second = Instance([fact("R", Fresh(0))])
        assert instance_fingerprint(first) == instance_fingerprint(second)
        assert instance_fingerprint(first, frozenset({"a"})) != \
            instance_fingerprint(second, frozenset({"a"}))

    def test_different_shapes_differ(self):
        first = Instance([fact("R", "a"), fact("R", "b")])
        second = Instance([fact("R", "a")])
        assert instance_fingerprint(first) != instance_fingerprint(second)


class TestStateInterner:
    def test_merges_isomorphic_states(self):
        interner = StateInterner(fixed={"a"})
        one = interner.intern(Instance([fact("R", Fresh(0))]))
        two = interner.intern(Instance([fact("R", Fresh(5))]))
        assert one is two
        assert interner.stats.iso_hits == 1
        assert interner.stats.collisions == 1

    def test_keeps_fixed_values_apart(self):
        interner = StateInterner(fixed={"a"})
        one = interner.intern(Instance([fact("R", "a")]))
        two = interner.intern(Instance([fact("R", Fresh(0))]))
        assert one is not two

    def test_exact_duplicates_hit_without_canonical_work(self):
        interner = StateInterner()
        instance = Instance([fact("R", Fresh(3))])
        first = interner.intern(instance)
        second = interner.intern(Instance([fact("R", Fresh(3))]))
        assert first is second
        assert interner.stats.exact_hits == 1
        assert interner.stats.canonicalizations == 0

    def test_unique_fingerprints_defer_canonicalization(self):
        interner = StateInterner()
        interner.intern(Instance([fact("R", "x")]))
        interner.intern(Instance([fact("Q", "x", "y")]))
        assert interner.stats.new_fingerprints == 2
        assert interner.stats.canonicalizations == 0
        assert len(interner) == 2

    def test_canonical_key_identifies_class(self):
        interner = StateInterner()
        entry = interner.intern(Instance([fact("R", Fresh(9))]))
        canonical = entry.canonical(interner.fixed)
        assert canonical == Instance([fact("R", Fresh(0))])
        assert entry.key(interner.fixed)


class TestSortedAccessors:
    @pytest.fixture
    def ts(self):
        schema = DatabaseSchema.of("R/1")
        system = TransitionSystem(schema, "s0")
        for name in ("s0", "s2", "s1"):
            system.add_state(name, Instance.empty())
        system.add_edge("s0", "s2", "b")
        system.add_edge("s0", "s1", "a")
        system.add_edge("s2", "s1")
        return system

    def test_sorted_successors(self, ts):
        assert ts.sorted_successors("s0") == ("s1", "s2")
        assert ts.sorted_successors("s1") == ()

    def test_sorted_labeled_edges(self, ts):
        assert ts.sorted_labeled_edges("s0") == (("a", "s1"), ("b", "s2"))

    def test_sorted_edges_deterministic(self, ts):
        assert list(ts.sorted_edges()) == [
            ("s0", "a", "s1"), ("s0", "b", "s2"), ("s2", None, "s1")]


class TestIsLegalShortCircuit:
    def test_matches_membership_semantics(self):
        dcds = library_system(books=2, members=1)
        instance = dcds.initial
        for rule in dcds.process.rules:
            legal = legal_substitutions(dcds, instance, rule)
            for sigma in legal:
                assert is_legal(dcds, instance, rule, sigma)
            action = dcds.process.action(rule.action)
            bogus = {param: "no-such-value" for param in action.params}
            if bogus and bogus not in legal:
                assert not is_legal(dcds, instance, rule, bogus)

    def test_swapped_parameters_rejected(self):
        dcds = library_system(books=1, members=1)
        instance = dcds.initial
        checkout = next(rule for rule in dcds.process.rules
                        if rule.action == "checkout")
        swapped = {Param("b"): "m0", Param("m"): "b0"}
        assert swapped not in legal_substitutions(dcds, instance, checkout)
        assert not is_legal(dcds, instance, checkout, swapped)

    def test_wrong_parameter_set_rejected(self):
        dcds = library_system(books=1, members=1)
        instance = dcds.initial
        checkout = next(rule for rule in dcds.process.rules
                        if rule.action == "checkout")
        assert not is_legal(dcds, instance, checkout, {Param("b"): "b0"})
