"""The Section 6 reductions: Theorems 6.1, 6.2, integrity constraints."""

import pytest

from repro.core import ServiceSemantics, do_action, enabled_moves
from repro.errors import ConstraintViolation
from repro.fol import parse_formula
from repro.gallery import example_41, example_43
from repro.reductions import (
    det_to_nondet, detname, memory_relation_name, nondet_to_det,
    project_to_original, with_integrity_constraint)
from repro.relational import Instance, fact
from repro.relational.values import Fresh
from repro.semantics import (
    DeterministicOracle, NondeterministicOracle, explore_concrete, rcycl,
    simulate)


class TestDetToNondet:
    def test_schema_extended(self, ex41):
        rewritten = det_to_nondet(ex41)
        assert rewritten.semantics is ServiceSemantics.NONDETERMINISTIC
        assert memory_relation_name("f") in rewritten.schema
        assert rewritten.schema.arity(memory_relation_name("f")) == 2

    def test_memory_forces_determinism(self, ex41):
        """Same call twice must return the same value in the rewrite."""
        rewritten = det_to_nondet(ex41)
        pool = ["a", Fresh(60), Fresh(61)]
        ts = explore_concrete(rewritten, pool, depth=2, max_states=2000)
        for state in ts.states:
            instance = ts.db(state)
            seen = {}
            for args_result in instance.tuples(memory_relation_name("f")):
                args, result = args_result[:-1], args_result[-1]
                assert seen.setdefault(args, result) == result

    def test_projection_matches_original(self, ex41):
        """Theorem 6.1(ii): projecting the rewrite onto the original schema
        gives the original transition system (over a shared value pool)."""
        rewritten = det_to_nondet(ex41)
        pool = ["a", Fresh(60), Fresh(61)]
        original_ts = explore_concrete(ex41, pool, depth=2, max_states=2000)
        rewritten_ts = explore_concrete(rewritten, pool, depth=2,
                                        max_states=2000)
        projected = project_to_original(rewritten_ts, ex41)
        original_dbs = {original_ts.db(s)
                        for s in original_ts.depth_levels()[1]}
        projected_dbs = {projected.db(s)
                         for s in projected.depth_levels()[1]}
        assert original_dbs == projected_dbs

    def test_only_functions_restriction(self, ex41):
        rewritten = det_to_nondet(ex41, only_functions=["f"])
        assert memory_relation_name("f") in rewritten.schema
        assert memory_relation_name("g") not in rewritten.schema


class TestNondetToDet:
    def test_schema_and_clock(self, ex43_nondet):
        rewritten = nondet_to_det(ex43_nondet)
        assert rewritten.semantics is ServiceSemantics.DETERMINISTIC
        assert "succ" in rewritten.schema
        assert "now" in rewritten.schema
        assert fact("now", 1) in rewritten.initial

    def test_calls_get_timestamp_argument(self, ex43_nondet):
        rewritten = nondet_to_det(ex43_nondet)
        action = rewritten.process.action("alpha")
        calls = {call.function for call in action.service_calls()}
        assert detname("f") in calls
        f_calls = [call for call in action.service_calls()
                   if call.function == detname("f")]
        assert all(call.arity == 2 for call in f_calls)

    def test_run_advances_clock(self, ex43_nondet):
        rewritten = nondet_to_det(ex43_nondet)
        trace = simulate(rewritten, steps=4, oracle=DeterministicOracle())
        assert len(trace) == 5
        now_values = [next(iter(inst.tuples("now")))[0]
                      for inst, _ in trace]
        assert len(set(now_values)) == len(now_values)  # all distinct

    def test_succ_stays_linear(self, ex43_nondet):
        rewritten = nondet_to_det(ex43_nondet)
        trace = simulate(rewritten, steps=4, oracle=DeterministicOracle())
        final = trace[-1][0]
        seconds = [pair[1] for pair in final.tuples("succ")]
        assert len(seconds) == len(set(seconds))  # key constraint held

    def test_projection_behaviour_preserved(self, ex43_nondet):
        """The projected run alternates R and Q like the original."""
        rewritten = nondet_to_det(ex43_nondet)
        trace = simulate(rewritten, steps=4, oracle=DeterministicOracle())
        relations = [inst.restrict(["R", "Q"]).relations()
                     for inst, _ in trace]
        assert relations[0] == {"R"}
        assert relations[1] == {"Q"}
        assert relations[2] == {"R"}

    def test_timestamps_enable_fresh_results(self, ex43_nondet):
        """Different steps may get different f-results — the point of the
        reduction: simulated nondeterminism."""
        rewritten = nondet_to_det(ex43_nondet)
        oracle = DeterministicOracle()
        trace = simulate(rewritten, steps=5, oracle=oracle)
        r_values = set()
        for inst, _ in trace:
            for (value,) in inst.tuples("R"):
                r_values.add(value)
        assert len(r_values) >= 2


class TestIntegrityConstraints:
    def test_enforced_on_successors(self, ex41):
        # Forbid R from ever containing two facts (an arbitrary FO IC).
        constraint = parse_formula(
            "forall x, y. (R(x) & R(y) -> x = y)")
        constrained = with_integrity_constraint(ex41, constraint)
        assert "auxIC" in constrained.schema
        pool = ["a", Fresh(70)]
        ts = explore_concrete(constrained, pool, depth=2, max_states=500)
        for state in ts.states:
            assert len(ts.db(state).tuples("R")) <= 1

    def test_violating_initial_rejected(self):
        from repro.core import DCDSBuilder

        builder = DCDSBuilder(name="bad")
        builder.schema("R/1")
        builder.initial("R('a'), R('b')")
        builder.action("noop", "R(x) ~> R(x)")
        builder.rule("true", "noop")
        dcds = builder.build()
        constraint = parse_formula("forall x, y. (R(x) & R(y) -> x = y)")
        with pytest.raises(ConstraintViolation):
            with_integrity_constraint(dcds, constraint)

    def test_open_formula_rejected(self, ex41):
        with pytest.raises(ValueError):
            with_integrity_constraint(ex41, parse_formula("R(x)"))

    def test_aux_tuple_persists(self, ex41):
        constraint = parse_formula("forall x, y. (R(x) & R(y) -> x = y)")
        constrained = with_integrity_constraint(ex41, constraint)
        pool = ["a", Fresh(70)]
        ts = explore_concrete(constrained, pool, depth=2, max_states=500)
        for state in ts.states:
            assert fact("auxIC", "auxA", "auxB") in ts.db(state)
