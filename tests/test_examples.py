"""The runnable examples stay runnable (smoke tests over their mains)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "travel_reimbursement",
    "deterministic_vs_nondeterministic",
    "turing_machine",
    "artifact_order_processing",
])
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert "===" in output            # every example prints sections
    assert "Traceback" not in output


def test_quickstart_prints_verdicts(capsys):
    _load("quickstart").main()
    output = capsys.readouterr().out
    assert "[holds" in output
    assert "weakly acyclic" in output


def test_turing_machine_agreement_reported(capsys):
    _load("turing_machine").main()
    output = capsys.readouterr().out
    assert "agreement: True" in output
    assert "G ~halted = False" in output   # flipper halts
    assert "G ~halted = True" in output    # looper does not
