"""Odds and ends: ablations, checker domains, pipeline flags."""

import pytest

from repro import verify
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_43
from repro.mucalc import ModelChecker, parse_mu
from repro.semantics import build_det_abstraction
from repro.semantics.ablations import AblationExhausted, rcycl_fresh_only


class TestAblations:
    def test_fresh_only_diverges_where_rcycl_saturates(self, ex43_nondet):
        with pytest.raises(AblationExhausted) as excinfo:
            rcycl_fresh_only(ex43_nondet, max_states=150)
        assert excinfo.value.states_reached > 150

    def test_fresh_only_requires_nondet(self, ex43_det):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            rcycl_fresh_only(ex43_det)

    def test_fresh_only_terminates_without_calls(self):
        """A call-free system saturates even without recycling."""
        from repro.core import DCDSBuilder

        builder = DCDSBuilder(name="no-calls")
        builder.schema("R/1")
        builder.initial("R('a')")
        builder.action("noop", "R(x) ~> R(x)")
        builder.rule("true", "noop")
        dcds = builder.build(ServiceSemantics.NONDETERMINISTIC)
        ts = rcycl_fresh_only(dcds, max_states=50)
        assert len(ts) == 1


class TestCheckerDomains:
    def test_extra_domain_extends_quantification(self, ex41_abstraction):
        checker = ModelChecker(ex41_abstraction,
                               extra_domain={"phantom"})
        assert "phantom" in checker.domain()
        # The phantom value is never live, so the guarded exists ignores it.
        formula = parse_mu("E x. live(x) & P(x)")
        assert checker.models(formula)

    def test_formula_constants_join_domain(self, ex41_abstraction):
        checker = ModelChecker(ex41_abstraction)
        formula = parse_mu("E x. x = 'out-of-ts' & ~live(x)")
        assert "out-of-ts" in checker.domain(formula)
        assert checker.models(formula)


class TestPipelineFlags:
    def test_keep_ts_false_drops_system(self, ex41):
        report = verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"),
                        keep_ts=False)
        assert report.transition_system is None
        assert report.abstraction_stats["states"] == 10

    def test_keep_ts_true_retains_system(self, ex41):
        report = verify(ex41, parse_mu("mu Z. (R('a') | <-> Z)"))
        assert report.transition_system is not None
        assert len(report.transition_system) == 10


class TestDetAbstractionEdgeLabels:
    def test_labels_carry_action_names(self, ex41_abstraction):
        labels = {label for _, label, _ in ex41_abstraction.edges()}
        assert labels == {"alpha"}

    def test_parametric_labels_carry_sigma(self):
        from repro.gallery import theorem_45_witness

        ts = build_det_abstraction(theorem_45_witness())
        labels = {label for _, label, _ in ts.edges()}
        assert labels == {"alpha[p='a']"}
