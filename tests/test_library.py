"""The parametric library loan system end to end."""

import pytest

from repro import verify
from repro.analysis import dataflow_graph, probe_state_bounded
from repro.core import ServiceSemantics, enabled_moves
from repro.gallery.library import (
    library_system, property_loaned_books_off_shelf,
    property_loans_returnable)
from repro.mucalc import Fragment, ModelChecker, classify, parse_mu
from repro.semantics import rcycl


@pytest.fixture(scope="module")
def library():
    return library_system(books=2, members=1)


@pytest.fixture(scope="module")
def library_ts(library):
    return rcycl(library, max_states=3000)


class TestParametricActions:
    def test_initial_moves_enumerate_books(self, library):
        moves = list(enabled_moves(library, library.initial))
        checkouts = [(action.name, tuple(sorted(
            value for value in sigma.values())))
            for action, sigma in moves]
        assert ("checkout", ("b0", "m0")) in checkouts
        assert ("checkout", ("b1", "m0")) in checkouts
        assert len(moves) == 2  # no loans yet, so no take_back

    def test_checkout_removes_book(self, library, library_ts):
        ts = library_ts
        for state in ts.states:
            shelf = {t[0] for t in ts.db(state).tuples("Book")}
            loaned = {t[0] for t in ts.db(state).tuples("Loaned")}
            assert not (shelf & loaned)

    def test_receipts_never_accumulate(self, library_ts):
        for state in library_ts.states:
            assert len(library_ts.db(state).tuples("Receipt")) <= 1

    def test_books_conserved(self, library_ts):
        for state in library_ts.states:
            db = library_ts.db(state)
            shelf = {t[0] for t in db.tuples("Book")}
            loaned = {t[0] for t in db.tuples("Loaned")}
            assert shelf | loaned == {"b0", "b1"}


class TestAnalysis:
    def test_gr_acyclic(self, library):
        assert dataflow_graph(library).is_gr_acyclic()

    def test_state_bounded_probe(self, library):
        result = probe_state_bounded(library, max_states=3000)
        assert result.is_bounded
        assert result.bound <= 6

    def test_rcycl_finite_and_total(self, library_ts):
        assert library_ts.is_total()
        assert 4 <= len(library_ts) < 1500


class TestProperties:
    def test_safety(self, library):
        formula = property_loaned_books_off_shelf()
        assert classify(formula) is Fragment.MU_LP
        report = verify(library, formula, max_states=3000)
        assert report.holds
        assert report.static_condition == "gr-acyclic"

    def test_returnability(self, library):
        report = verify(library, property_loans_returnable(),
                        max_states=3000)
        assert report.holds

    def test_scaling_members(self):
        small = library_system(books=1, members=2)
        report = verify(small, property_loaned_books_off_shelf(),
                        max_states=3000)
        assert report.holds

    def test_double_loan_impossible(self, library_ts):
        checker = ModelChecker(library_ts)
        double = parse_mu(
            "E b, m, n. live(b) & live(m) & live(n) & m != n "
            "& Loaned(b, m) & Loaned(b, n)")
        reachable_double = checker.evaluate(double) & frozenset(
            library_ts.reachable_from())
        assert not reachable_double
