"""Algorithm RCYCL (Theorem 5.4) against the paper's figures."""

import pytest

from repro.errors import AbstractionDiverged, ReproError
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_43, example_52, example_53
from repro.relational import Instance, fact
from repro.semantics import (
    isomorphism_quotient, rcycl, rcycl_partial, state_size_trace)


class TestFigure7:
    """Example 4.3 under nondeterministic services — Figure 7."""

    def test_terminates_finite(self, ex43_rcycl):
        assert len(ex43_rcycl) == 6
        assert ex43_rcycl.is_total()

    def test_state_bound_is_one(self, ex43_rcycl):
        assert ex43_rcycl.max_state_size() == 1

    def test_quotient_matches_figure_7b(self, ex43_rcycl):
        quotient, _ = isomorphism_quotient(ex43_rcycl, fixed={"a"})
        assert len(quotient) == 4
        databases = {repr(quotient.db(state)) for state in quotient.states}
        assert databases == {"{R('a')}", "{Q('a')}", "{R(#0)}", "{Q(#0)}"}

    def test_alternates_r_and_q(self, ex43_rcycl):
        for source, _, target in ex43_rcycl.edges():
            assert ex43_rcycl.db(source).relations() != \
                ex43_rcycl.db(target).relations()

    def test_deterministic_construction(self, ex43_nondet):
        assert rcycl(ex43_nondet).states == rcycl(ex43_nondet).states


class TestFigure6:
    """Example 5.2 — state-unbounded: RCYCL diverges, state sizes grow."""

    def test_divergence(self, ex52):
        with pytest.raises(AbstractionDiverged):
            rcycl(ex52, max_states=150)

    def test_partial_never_raises(self, ex52):
        result = rcycl_partial(ex52, max_states=100)
        assert result.diverged
        assert len(result.transition_system) > 100

    def test_state_sizes_grow(self, ex52):
        sizes = state_size_trace(ex52, max_states=120)
        assert max(sizes) >= 3  # accumulating Q facts
        assert sizes == sorted(sizes) or max(sizes) > sizes[0]

    def test_finite_branching_despite_divergence(self, ex52):
        result = rcycl_partial(ex52, max_states=80)
        ts = result.transition_system
        for state in ts.states:
            assert len(ts.successors(state)) < 40


class TestExample53:
    """Example 5.3 — generation without recall still explodes."""

    def test_divergence(self, ex53):
        with pytest.raises(AbstractionDiverged):
            rcycl(ex53, max_states=150)

    def test_tuple_count_doubles(self, ex53):
        result = rcycl_partial(ex53, max_states=120)
        ts = result.transition_system
        assert ts.max_state_size() >= 4


class TestRecyclingDiscipline:
    def test_bounded_value_pool(self, ex43_rcycl):
        # Eventually-recycling: the total number of values stays small.
        assert len(ex43_rcycl.values()) <= 4

    def test_rejects_det_semantics(self):
        with pytest.raises(ReproError):
            rcycl(example_43(ServiceSemantics.DETERMINISTIC))

    def test_ex41_nondet_is_state_bounded(self):
        # Example 4.1 has no recall cycle fed by calls: GR-acyclic,
        # so RCYCL terminates even though values keep being generated.
        ts = rcycl(example_41(ServiceSemantics.NONDETERMINISTIC))
        assert ts.max_state_size() <= 3
        assert len(ts) < 300


class TestStudentsRegistry:
    def test_finite_and_total(self, students_rcycl):
        assert len(students_rcycl) < 50
        assert students_rcycl.is_total()

    def test_statuses_constrained(self, students_rcycl):
        ts = students_rcycl
        statuses = set()
        for state in ts.states:
            for (value,) in ts.db(state).tuples("Status"):
                statuses.add(value)
        assert statuses == {"idle", "enrolled", "graduated"}

    def test_at_most_one_student(self, students_rcycl):
        ts = students_rcycl
        for state in ts.states:
            assert len(ts.db(state).tuples("Stud")) <= 1
