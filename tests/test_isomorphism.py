"""Instance isomorphism and canonical labeling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Instance, fact
from repro.relational.isomorphism import (
    are_isomorphic, canonical_form, canonical_key, find_isomorphism,
    iter_isomorphisms)


class TestFindIsomorphism:
    def test_identity(self):
        instance = Instance([fact("R", "a", "b")])
        iso = find_isomorphism(instance, instance)
        assert iso is not None
        assert instance.rename(iso) == instance

    def test_simple_renaming(self):
        first = Instance([fact("R", "a", "b")])
        second = Instance([fact("R", "x", "y")])
        iso = find_isomorphism(first, second)
        assert iso == {"a": "x", "b": "y"}

    def test_respects_fixed(self):
        first = Instance([fact("R", "a")])
        second = Instance([fact("R", "b")])
        assert are_isomorphic(first, second)
        assert not are_isomorphic(first, second, fixed={"a"})

    def test_respects_partial(self):
        first = Instance([fact("R", "a", "b")])
        second = Instance([fact("R", "x", "y")])
        assert find_isomorphism(first, second, partial={"a": "y"}) is None
        assert find_isomorphism(first, second, partial={"a": "x"}) is not None

    def test_structure_mismatch(self):
        chain = Instance([fact("E", 1, 2), fact("E", 2, 3)])
        triangle = Instance([fact("E", 1, 2), fact("E", 2, 3),
                             fact("E", 3, 1)])
        assert not are_isomorphic(chain, triangle)

    def test_self_loop_vs_two_cycle(self):
        loops = Instance([fact("E", "a", "a"), fact("E", "b", "c"),
                          fact("E", "c", "b")])
        other = Instance([fact("E", "x", "y"), fact("E", "y", "x"),
                          fact("E", "z", "z")])
        assert are_isomorphic(loops, other)

    def test_count_automorphisms_of_symmetric_pair(self):
        # E(a,b), E(b,a) has exactly two automorphisms.
        pair = Instance([fact("E", "a", "b"), fact("E", "b", "a")])
        assert len(list(iter_isomorphisms(pair, pair))) == 2

    def test_no_iso_between_different_sizes(self):
        assert not are_isomorphic(
            Instance([fact("R", "a")]),
            Instance([fact("R", "a"), fact("R", "b")]))


class TestCanonicalForm:
    def test_fixed_values_untouched(self):
        instance = Instance([fact("R", "a", "b")])
        canonical, renaming = canonical_form(instance, fixed={"a"})
        assert "a" not in renaming
        assert fact("R", "a", renaming["b"]) in canonical

    def test_canonical_key_identifies_isomorphic(self):
        first = Instance([fact("E", "a", "a"), fact("E", "b", "c"),
                          fact("E", "c", "b")])
        second = Instance([fact("E", "x", "y"), fact("E", "y", "x"),
                           fact("E", "z", "z")])
        assert canonical_key(first) == canonical_key(second)

    def test_canonical_key_separates_non_isomorphic(self):
        first = Instance([fact("E", "a", "b"), fact("E", "b", "a"),
                          fact("E", "c", "c")])
        third = Instance([fact("E", "a", "b"), fact("E", "b", "c"),
                          fact("E", "c", "a")])
        assert canonical_key(first) != canonical_key(third)

    def test_idempotent(self):
        instance = Instance([fact("E", "p", "q"), fact("E", "q", "p")])
        canonical, _ = canonical_form(instance)
        again, _ = canonical_form(canonical)
        assert canonical == again

    def test_empty_instance(self):
        canonical, renaming = canonical_form(Instance.empty())
        assert canonical == Instance.empty()
        assert renaming == {}


# -- property-based ----------------------------------------------------------

values = st.sampled_from(["a", "b", "c", "d", "e"])
facts_strategy = st.lists(
    st.tuples(st.sampled_from(["R", "S"]), st.tuples(values, values)),
    min_size=0, max_size=6,
).map(lambda items: Instance([fact(name, *terms) for name, terms in items]))

renamings = st.permutations(["a", "b", "c", "d", "e"]).map(
    lambda target: dict(zip(["a", "b", "c", "d", "e"], target)))


@given(facts_strategy, renamings)
@settings(max_examples=60, deadline=None)
def test_canonical_key_invariant_under_renaming(instance, renaming):
    renamed = instance.rename(renaming)
    assert canonical_key(instance) == canonical_key(renamed)


@given(facts_strategy, renamings)
@settings(max_examples=60, deadline=None)
def test_isomorphism_found_for_renamed_instance(instance, renaming):
    renamed = instance.rename(renaming)
    iso = find_isomorphism(instance, renamed)
    assert iso is not None
    assert instance.rename(iso) == renamed


@given(facts_strategy)
@settings(max_examples=40, deadline=None)
def test_canonical_form_is_isomorphic_to_original(instance):
    canonical, renaming = canonical_form(instance)
    assert instance.rename(renaming) == canonical
    assert are_isomorphic(instance, canonical)
