"""The compiled checking layer: compiler, evaluator, on-the-fly route.

Unit-level coverage of `repro.mucalc.engine` plus the checker behaviours
the seed suite never exercised: alternating fixpoints (µ inside ν and
ν inside µ, depth > 1), `Forall`-over-`Box` duals, and `LIVE` applied to
constants.
"""

import pytest

from repro.engine import Explorer, SuccessorGenerator
from repro.errors import VerificationError
from repro.mucalc import (
    AF, AG, EF, EG, ModelChecker, check, extension, parse_mu,
    compile_formula, evaluate_local, invariant_body, reachability_body,
    recognize_shape, to_pnf)
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, PredVar,
    Nu, QF)
from repro.mucalc.engine import (
    CompiledChecker, box_states, deadlock_states, diamond_states,
    is_state_local)
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Var
from repro.semantics import TransitionSystem


@pytest.fixture
def line():
    """s0 -> s1 -> s2 (self-loop), values appear and disappear."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, "s0", name="line")
    ts.add_state("s0", Instance([fact("P", "a")]))
    ts.add_state("s1", Instance([fact("P", "a"), fact("Q", "b")]))
    ts.add_state("s2", Instance([fact("Q", "b")]))
    ts.add_edge("s0", "s1")
    ts.add_edge("s1", "s2")
    ts.add_edge("s2", "s2")
    return ts


@pytest.fixture
def branch():
    """s0 branches; only the left branch reaches the goal; d deadlocks."""
    schema = DatabaseSchema.of("G/0", "N/0")
    ts = TransitionSystem(schema, "s0", name="branch")
    ts.add_state("s0", Instance([fact("N")]))
    ts.add_state("left", Instance([fact("N")]))
    ts.add_state("right", Instance([fact("N")]))
    ts.add_state("goal", Instance([fact("G")]))
    ts.add_state("dead", Instance([fact("N")]))
    ts.add_edge("s0", "left")
    ts.add_edge("s0", "right")
    ts.add_edge("left", "goal")
    ts.add_edge("right", "right")
    ts.add_edge("right", "dead")
    ts.add_edge("goal", "goal")
    return ts


def both(ts, formula, **kwargs):
    compiled = extension(ts, formula, **kwargs)
    reference = extension(ts, formula, compiled=False, **kwargs)
    assert compiled == reference, f"parity broken on {formula!r}"
    return compiled


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------

class TestPNF:
    def test_negation_reaches_leaves(self):
        formula = MNot(EF(parse_mu("P('a')")))
        pnf = to_pnf(formula)
        # ~mu Z.(p | <->Z) == nu Z.(~p & [-]Z)
        assert isinstance(pnf, Nu)
        assert isinstance(pnf.sub, MAnd)
        kinds = {type(sub) for sub in pnf.sub.subs}
        assert kinds == {MNot, Box}

    def test_double_negation_cancels(self):
        p = parse_mu("P('a')")
        assert to_pnf(MNot(MNot(p))) == p

    def test_quantifier_dualization(self):
        formula = MNot(parse_mu("E x. P(x)"))
        pnf = to_pnf(formula)
        assert isinstance(pnf, MForall)
        assert isinstance(pnf.sub, MNot)

    def test_free_predicate_variable_stays_negated(self):
        pnf = to_pnf(MNot(PredVar("W")))
        assert pnf == MNot(PredVar("W"))

    def test_pnf_preserves_extension(self, line):
        formula = MNot(EF(MNot(parse_mu("P('a') | Q('b')"))))
        assert both(line, formula) == both(line, to_pnf(formula))


class TestCompileAnalysis:
    def test_alternation_depth(self):
        p = parse_mu("P('a')")
        assert compile_formula(EF(p)).alternation_depth == 1
        assert compile_formula(AG(EF(p))).alternation_depth == 2
        x, y = PredVar("X"), PredVar("Y")
        infinitely_often = Nu("X", Mu("Y", MOr.of(
            MAnd.of(p, Diamond(x)), Diamond(y))))
        assert compile_formula(infinitely_often).alternation_depth == 2
        wrapped = Mu("Z", MOr.of(infinitely_often, Diamond(PredVar("Z"))))
        assert compile_formula(wrapped).alternation_depth == 3

    def test_cells_and_descendants(self):
        p = parse_mu("P('a')")
        compiled = compile_formula(AG(EF(p)))
        assert len(compiled.cells) == 2
        outer = compiled.cells[0]
        assert not outer.least and outer.mu_descendants == (1,)

    def test_conjunct_cost_ordering(self):
        # The fixpoint conjunct is hoisted after the cheap query guard.
        formula = MAnd.of(EF(parse_mu("P('a')")), parse_mu("Q('b')"))
        compiled = compile_formula(formula)
        assert compiled.root.children[0].kind == "query"
        assert compiled.root.children[1].kind == "fix"

    def test_monotonicity_still_enforced(self):
        from repro.errors import MonotonicityError

        bad = Mu("Z", MNot(PredVar("Z")))
        with pytest.raises(MonotonicityError):
            compile_formula(bad)


# ---------------------------------------------------------------------------
# Indexed modalities and the predecessor index
# ---------------------------------------------------------------------------

class TestIndexedModalities:
    def test_predecessor_index(self, branch):
        assert branch.predecessors("goal") == {"left", "goal"}
        assert branch.predecessors("s0") == frozenset()
        assert branch.out_degree("s0") == 2
        assert branch.out_degree("dead") == 0

    def test_predecessor_index_invalidated_by_new_edge(self, branch):
        assert branch.predecessors("dead") == {"right"}
        branch.add_edge("dead", "dead")
        assert branch.predecessors("dead") == {"right", "dead"}

    def test_diamond_box_helpers_match_scan(self, branch):
        deadlocks = deadlock_states(branch)
        assert deadlocks == {"dead"}
        for target in ({"goal"}, {"right", "dead"}, set(),
                       set(branch.states)):
            target = frozenset(target)
            assert diamond_states(branch, target) == frozenset(
                s for s in branch.states
                if branch.successors(s) & target)
            assert box_states(branch, target, deadlocks) == frozenset(
                s for s in branch.states
                if branch.successors(s) <= target)

    def test_deadlock_semantics(self, branch):
        # [-]G holds vacuously on the deadlock state, <->G fails there.
        assert "dead" in both(branch, Box(parse_mu("G()")))
        assert "dead" not in both(branch, Diamond(parse_mu("G()")))


# ---------------------------------------------------------------------------
# Alternating fixpoints (depth > 1) — previously untested
# ---------------------------------------------------------------------------

class TestAlternatingFixpoints:
    def test_mu_inside_nu_infinitely_often(self, branch):
        # Infinitely often G: holds where some run visits goal forever.
        formula = parse_mu("nu X. mu Y. ((G() & <-> X) | <-> Y)")
        assert both(branch, formula) == {"s0", "left", "goal"}

    def test_nu_inside_mu_eventually_invariant(self, branch):
        # Eventually a state from which N holds globally (right's loop can
        # deadlock into dead, which satisfies AG N vacuously from there).
        formula = Mu("Y", MOr.of(
            Nu("X", MAnd.of(parse_mu("N()"), Box(PredVar("X")))),
            Diamond(PredVar("Y"))))
        reference = extension(branch, formula, compiled=False)
        assert both(branch, formula) == reference

    def test_entangled_alternation(self, branch):
        # The outer nu variable occurs inside the inner mu body (genuine
        # alternation, not nesting of closed blocks).
        formula = parse_mu("nu X. mu Y. ((N() & <-> X) | (G() & <-> Y))")
        both(branch, formula)

    def test_depth_three_tower(self, line):
        inner = parse_mu("nu X. mu Y. ((Q('b') & <-> X) | <-> Y)")
        formula = Mu("Z", MOr.of(inner, Diamond(PredVar("Z"))))
        assert compile_formula(formula).alternation_depth == 3
        assert both(line, formula) == {"s0", "s1", "s2"}

    def test_warm_start_counters(self, branch):
        # Emerson-Lei: the closed inner EF block stabilizes once; the
        # second outer iteration must hit the memo instead of re-iterating.
        checker = ModelChecker(branch)
        checker.evaluate(AG(EF(parse_mu("G()"))))
        stats = checker.last_checking_stats
        assert stats["mode"] == "compiled"
        assert stats["iterations"] < 20
        assert stats["memo_hits"] > 0


# ---------------------------------------------------------------------------
# Forall-over-Box duals — previously untested
# ---------------------------------------------------------------------------

class TestForallBoxDuals:
    def test_forall_box_equals_not_exists_diamond_not(self, line):
        x = Var("x")
        body = Box(MOr.of(MNot(Live((x,))), parse_mu("Q(x)")))
        universal = MForall((x,), MOr.of(MNot(Live((x,))), body))
        dual = MNot(MExists(
            (x,), MNot(MOr.of(MNot(Live((x,))), body))))
        assert both(line, universal) == both(line, dual)

    def test_forall_box_guarded(self, line):
        # A x. (live(x) -> [-] (live(x) -> Q(x))): persistence-guarded
        # universal over a box.
        formula = parse_mu(
            "A x. (live(x) -> [-] (live(x) -> Q(x)))")
        result = both(line, formula)
        # s1: 'a' and 'b' live; successor s2 keeps only 'b', and Q('b')
        # holds there; dropped 'a' satisfies the guard vacuously.
        assert "s1" in result

    def test_box_of_forall(self, line):
        formula = Box(parse_mu("A x. (live(x) -> (P(x) | Q(x)))"))
        assert both(line, formula) == {"s0", "s1", "s2"}


# ---------------------------------------------------------------------------
# LIVE with constants — previously untested
# ---------------------------------------------------------------------------

class TestLiveWithConstants:
    def test_live_constant_only(self, line):
        assert both(line, Live(("a",))) == {"s0", "s1"}
        assert both(line, Live(("b",))) == {"s1", "s2"}

    def test_live_mixing_constant_and_variable(self, line):
        formula = parse_mu("E x. live(x, 'a') & Q(x)")
        # needs a live x with Q(x) while 'a' is also live: only s1.
        assert both(line, formula) == {"s1"}

    def test_live_dead_constant(self, line):
        # 'zzz' is never live, but it enlarges the quantification domain
        # via the formula's constants.
        formula = MAnd.of(Live(("zzz",)), parse_mu("P('a')"))
        assert both(line, formula) == frozenset()
        formula = parse_mu("E x. (x = 'zzz' & ~live(x))")
        assert both(line, formula) == {"s0", "s1", "s2"}

    def test_live_constant_under_fixpoint(self, line):
        # EF (live('a') & live('b')) — constants threaded through a mu.
        formula = EF(MAnd.of(Live(("a",)), Live(("b",))))
        assert both(line, formula) == {"s0", "s1"}


# ---------------------------------------------------------------------------
# Errors (compiled path mirrors the reference's messages)
# ---------------------------------------------------------------------------

class TestCompiledErrors:
    def test_unbound_query_variable(self, line):
        from repro.fol import atom

        with pytest.raises(VerificationError):
            ModelChecker(line).evaluate(QF(atom("P", Var("x"))))

    def test_unbound_live_variable(self, line):
        with pytest.raises(VerificationError):
            ModelChecker(line).evaluate(Live((Var("x"),)))

    def test_unbound_predicate_variable(self, line):
        with pytest.raises(VerificationError):
            ModelChecker(line).evaluate(PredVar("Z"))


# ---------------------------------------------------------------------------
# On-the-fly recognition and local evaluation
# ---------------------------------------------------------------------------

class TestShapeRecognition:
    def test_ef_and_ag_recognized(self):
        p = parse_mu("P('a')")
        shape = recognize_shape(EF(p))
        assert shape.kind == "reachability" and shape.body == p
        shape = recognize_shape(AG(p))
        assert shape.kind == "invariant" and shape.body == p

    def test_guarded_quantifiers_accepted(self):
        body = parse_mu("E x. live(x) & P(x)")
        assert recognize_shape(AG(body)).body == body

    def test_unguarded_quantifier_rejected(self):
        assert recognize_shape(AG(parse_mu("E x. P(x)"))) is None
        assert not is_state_local(parse_mu("E x. P(x)"))

    def test_modal_body_rejected(self):
        assert recognize_shape(AG(Diamond(parse_mu("P('a')")))) is None

    def test_other_fixpoints_rejected(self):
        p = parse_mu("P('a')")
        assert recognize_shape(AF(p)) is None
        assert recognize_shape(EG(p)) is None

    def test_destructurers_invert_encodings(self):
        p = parse_mu("P('a') | Q('b')")
        assert reachability_body(EF(p)) == p
        assert invariant_body(AG(p)) == p
        assert reachability_body(AG(p)) is None
        assert invariant_body(EF(p)) is None


class TestEvaluateLocal:
    def test_matches_global_extension(self, line):
        bodies = [
            parse_mu("P('a')"),
            parse_mu("live('a') & live('b')"),
            parse_mu("E x. live(x) & Q(x)"),
            parse_mu("A x. (live(x) -> (P(x) | Q(x)))"),
            parse_mu("~(E x. live(x) & P(x) & Q(x))"),
        ]
        for body in bodies:
            ext = extension(line, body)
            for state in line.states:
                assert evaluate_local(body, line.db(state)) == \
                    (state in ext), f"{body!r} at {state}"

    def test_rejects_non_local(self, line):
        with pytest.raises(ValueError):
            evaluate_local(Diamond(parse_mu("P('a')")), line.db("s0"))


class _ListGenerator(SuccessorGenerator):
    """Path-shaped generator over canned instances (for observer tests)."""

    def __init__(self, instances):
        self.instances = instances

    def initial_state(self):
        return 0, self.instances[0]

    def successors(self, state):
        if state + 1 < len(self.instances):
            yield state + 1, self.instances[state + 1], None
        else:
            yield state, self.instances[state], None


class TestExplorerObserver:
    def setup_method(self):
        self.schema = DatabaseSchema.of("P/1", "G/0")
        self.instances = [
            Instance([fact("P", "a")]),
            Instance([fact("P", "b")]),
            Instance([fact("G")]),
            Instance([fact("P", "c")]),
        ]

    def test_early_stop_on_witness(self):
        from repro.mucalc.engine import OnTheFlyVerifier

        verifier = OnTheFlyVerifier(recognize_shape(EF(parse_mu("G()"))))
        explorer = Explorer(self.schema, observer=verifier.observe)
        result = explorer.run(_ListGenerator(self.instances))
        assert result.stats.early_stop == "witness-found"
        assert verifier.verdict()
        assert verifier.states_checked == 3
        assert len(result.transition_system) == 3  # state 3 never built
        assert result.transition_system.exploration_stats["early_stop"] \
            == "witness-found"

    def test_no_stop_when_absent(self):
        from repro.mucalc.engine import OnTheFlyVerifier

        verifier = OnTheFlyVerifier(
            recognize_shape(EF(parse_mu("P('zzz')"))))
        explorer = Explorer(self.schema, observer=verifier.observe)
        result = explorer.run(_ListGenerator(self.instances))
        assert result.stats.early_stop is None
        assert not verifier.verdict()
        assert len(result.transition_system) == 4

    def test_invariant_violation_stop(self):
        from repro.mucalc.engine import OnTheFlyVerifier

        verifier = OnTheFlyVerifier(
            recognize_shape(AG(parse_mu("~G()"))))
        explorer = Explorer(self.schema, observer=verifier.observe)
        result = explorer.run(_ListGenerator(self.instances))
        assert result.stats.early_stop == "violation-found"
        assert not verifier.verdict()

    def test_stop_on_initial_state(self):
        from repro.mucalc.engine import OnTheFlyVerifier

        verifier = OnTheFlyVerifier(
            recognize_shape(EF(parse_mu("P('a')"))))
        explorer = Explorer(self.schema, observer=verifier.observe)
        result = explorer.run(_ListGenerator(self.instances))
        assert len(result.transition_system) == 1
        assert verifier.verdict()
