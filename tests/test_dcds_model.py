"""The DCDS container: validation, semantics flags, sizing."""

import pytest

from repro.core import DCDS, DCDSBuilder, ServiceSemantics
from repro.errors import SchemaError
from repro.gallery import example_41


def _base_builder():
    builder = DCDSBuilder(name="model")
    builder.schema("R/1", "S/2")
    builder.initial("R('a')")
    builder.service("f/1")
    return builder


class TestValidation:
    def test_effect_relation_arity_checked(self):
        builder = _base_builder()
        builder.action("go", "R(x) ~> S(x)")  # S is binary
        builder.rule("true", "go")
        with pytest.raises(SchemaError):
            builder.build()

    def test_rule_relation_checked(self):
        builder = _base_builder()
        builder.action("go", "R(x) ~> R(x)")
        builder.rule("exists z. Zed(z)", "go")
        with pytest.raises(SchemaError):
            builder.build()

    def test_body_relation_checked(self):
        builder = _base_builder()
        builder.action("go", "Zed(x) ~> R(x)")
        builder.rule("true", "go")
        with pytest.raises(SchemaError):
            builder.build()


class TestSemanticsFlags:
    def test_with_semantics(self, ex41):
        flipped = ex41.with_semantics(ServiceSemantics.NONDETERMINISTIC)
        assert flipped.semantics is ServiceSemantics.NONDETERMINISTIC
        assert ex41.semantics is ServiceSemantics.DETERMINISTIC

    def test_is_deterministic_default(self, ex41):
        assert ex41.is_deterministic("f")
        nondet = ex41.with_semantics(ServiceSemantics.NONDETERMINISTIC)
        assert not nondet.is_deterministic("f")

    def test_mixed_override(self):
        builder = _base_builder()
        builder.service("g/1", deterministic=True)
        builder.action("go", "R(x) ~> R(f(x)), R(g(x))")
        builder.rule("true", "go")
        dcds = builder.build(ServiceSemantics.NONDETERMINISTIC)
        assert dcds.has_mixed_semantics()
        assert dcds.is_deterministic("g")
        assert not dcds.is_deterministic("f")

    def test_uniform_semantics_not_mixed(self, ex41):
        assert not ex41.has_mixed_semantics()


class TestSpecSignature:
    def _build(self, **service_kwargs):
        builder = _base_builder()
        builder.service("g/1", **service_kwargs)
        builder.action("go", "R(x) ~> R(f(x)), R(g(x))")
        builder.rule("true", "go")
        return builder.build(ServiceSemantics.NONDETERMINISTIC)

    def test_equal_specs_equal_signatures(self):
        assert self._build().spec_signature() \
            == self._build().spec_signature()

    def test_function_determinism_override_changes_signature(self):
        """The per-function override flips verify() routing (mixed
        semantics, Section 6), so it must be part of the signature."""
        inherited = self._build()
        overridden = self._build(deterministic=True)
        assert inherited.has_mixed_semantics() \
            != overridden.has_mixed_semantics()
        assert inherited.spec_signature() != overridden.spec_signature()

    def test_semantics_changes_signature(self, ex41):
        flipped = ex41.with_semantics(ServiceSemantics.NONDETERMINISTIC)
        assert ex41.spec_signature() != flipped.spec_signature()


class TestMetadata:
    def test_known_constants(self):
        builder = _base_builder()
        builder.action("go", "R(x) ~> R('status')")
        builder.rule("true", "go")
        dcds = builder.build()
        assert "a" in dcds.known_constants()       # from I0
        assert "status" in dcds.known_constants()  # from the process layer

    def test_size(self, ex41):
        # 3 relations + 1 action + 2 effects + 1 rule.
        assert ex41.size() == 7

    def test_describe_lists_constraints(self):
        from repro.gallery import example_42

        text = example_42().describe()
        assert "constraint" in text
