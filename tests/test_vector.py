"""Differential battery pinning the vector backends to the authoritative
paths.

Two accelerators ride behind kill switches: the columnar join executor
(:mod:`repro.relational.vector`, numpy, ``REPRO_NO_VECTOR`` /
``REPRO_NO_NUMPY``) and the bitset fixpoint engine
(:mod:`repro.mucalc.engine.bitset`, pure Python, ``REPRO_NO_VECTOR``).
Both are pure accelerators: every observable — query answer sets, whole
transition systems, checker extensions — must be bit-identical across
default / ``REPRO_NO_VECTOR=1`` / ``REPRO_NO_NUMPY=1`` /
``REPRO_NO_KERNEL=1``, seeded so failures reproduce from the
parametrization alone.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import ServiceSemantics
from repro.core.execution import clear_subproblem_caches
from repro.fol.ast import And, Atom, Eq, Exists, Forall, Not, Or, exists
from repro.fol.compile import CompiledQuery
from repro.fol.evaluation import answers, evaluation_domain
from repro.gallery import example_43, student_registry
from repro.mucalc import EF, ModelChecker, parse_mu
from repro.mucalc.ast import Diamond, MAnd, MOr, Mu, Nu, PredVar
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational import vector
from repro.relational.coding import TermTable
from repro.relational.values import Var
from repro.semantics import TransitionSystem, build_det_abstraction, rcycl
from repro.workloads import lattice_dcds, random_dcds

x, y, z = Var("x"), Var("y"), Var("z")

#: Tests that exercise the numpy path itself (rather than parity across
#: modes) need the backend live in this process.
vector_live = pytest.mark.skipif(
    not vector.vector_enabled(),
    reason="vector backend off (REPRO_NO_VECTOR / numpy unavailable)")


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_subproblem_caches()
    yield
    clear_subproblem_caches()


# ---------------------------------------------------------------------------
# Query-level parity: vector executor vs interpreted joins vs reference
# ---------------------------------------------------------------------------

def dense_instance(seed: int) -> Instance:
    """A seeded instance big enough to clear ``MIN_TUPLES`` so the vector
    path actually engages (a pseudo-random digraph plus unary labels)."""
    import random

    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(14)]
    facts = [fact("R", rng.choice(nodes), rng.choice(nodes))
             for _ in range(40)]
    facts += [fact("S", node) for node in nodes if rng.random() < 0.5]
    facts += [fact("T", 1, "n0", "n1"), fact("T", 2, "n2", "n2")]
    return Instance(facts)


FORMULAS = [
    Atom("R", (x, y)),
    And.of(Atom("R", (x, y)), Atom("S", (y,))),
    And.of(Atom("R", (x, y)), Not(Atom("S", (y,)))),
    And.of(Atom("R", (x, y)), Atom("R", (y, z)), Atom("R", (z, x))),
    Or.of(Atom("S", (x,)), Atom("R", (x, x))),
    Exists((y,), And.of(Atom("R", (x, y)), Atom("S", (y,)))),
    Forall((y,), Or.of(Not(Atom("R", (x, y))), Atom("S", (y,)))),
    And.of(Atom("R", (x, y)), Eq(x, "n0")),
    Eq(x, y),
    Not(Eq(x, y)),
    exists("y", And.of(Atom("R", (x, y)), exists("x", Atom("R", (y, x))))),
    And.of(Atom("T", (1, x, y)), Atom("R", (x, y))),
    Or.of(And.of(Atom("R", (x, y)), Atom("S", (x,))), Eq(x, y)),
    Not(Atom("S", (x,))),
    And.of(Atom("R", (x, y)), Or.of(Atom("S", (x,)), Not(Atom("S", (y,))))),
]


def encode(table: TermTable, instance: Instance):
    from repro.relational.coding import CodedInstance

    grouped = {}
    for current in instance:
        relation = table.code(current.relation)
        grouped.setdefault(relation, []).append(table.codes(current.terms))
    return CodedInstance(
        {relation: tuple(tuples) for relation, tuples in grouped.items()})


def answer_sets(formula, instance):
    """(vector, interpreted, reference) answer sets for one formula."""
    table = TermTable()
    plan = CompiledQuery(formula, table)
    coded = encode(table, instance)
    domain = plan.domain(coded, table, frozenset())
    free = sorted(plan.free_slots.items(), key=lambda item: item[0].name)
    slots = [slot for _, slot in free]

    matrix = vector.binding_matrix(plan, coded, domain)
    vectorized = None
    if matrix is not None:
        vectorized = {
            tuple(table.term(code) for code in row)
            for row in vector.distinct_projection(matrix, slots)}

    interpreted = set()
    for binding in plan.iter_bindings(coded, plan.fresh_regs(), domain):
        interpreted.add(tuple(table.term(binding[slot]) for slot in slots))

    ref_domain = evaluation_domain(instance, formula, frozenset())
    reference = {
        tuple(theta[var] for var, _ in free)
        for theta in answers(formula, instance, domain=ref_domain)}
    return vectorized, interpreted, reference


class TestQueryParity:
    @pytest.mark.parametrize("index", range(len(FORMULAS)))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_three_way_answers(self, index, seed):
        vectorized, interpreted, reference = answer_sets(
            FORMULAS[index], dense_instance(seed))
        assert interpreted == reference, FORMULAS[index]
        if vector.vector_enabled():
            # The dense instance clears MIN_TUPLES, so the vector path
            # must have engaged (None would mean a silent fallback).
            assert vectorized is not None, FORMULAS[index]
            assert vectorized == reference, FORMULAS[index]


# ---------------------------------------------------------------------------
# Transition-system parity across every kill-switch mode
# ---------------------------------------------------------------------------

SWITCHES = ("REPRO_NO_VECTOR", "REPRO_NO_NUMPY", "REPRO_NO_KERNEL")

#: Mode name -> env overrides. "no-numpy" simulates an uninstalled numpy;
#: "reference" disables the integer kernel wholesale (and with it the
#: vector backend, which only runs inside kernel routines).
MODES = {
    "vector": {},
    "no-vector": {"REPRO_NO_VECTOR": "1"},
    "no-numpy": {"REPRO_NO_NUMPY": "1"},
    "reference": {"REPRO_NO_KERNEL": "1"},
}

def conditioned_grid():
    """A spec whose rule condition is a real join over an instance above
    ``MIN_TUPLES`` — exercises the vectorized legal-substitution path
    (copy-only effects, so the abstraction closes at one state)."""
    from repro.core import DCDSBuilder

    builder = DCDSBuilder(name="conditioned-grid")
    builder.schema("E/2")
    facts = [f"E('a{i}', 'a{(i * 3 + 1) % 17}')" for i in range(17)]
    facts += [f"E('a{i}', 'a{(i + 5) % 17}')" for i in range(17)]
    builder.initial(", ".join(facts))
    builder.action("tag(p)", "E(x, y) ~> E(x, y)")
    builder.rule("exists y. E($p, y) & ~E(y, $p)", "tag")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def _build(dcds):
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        return build_det_abstraction(dcds, max_states=20000)
    return rcycl(dcds, max_states=20000)


BUILDERS = {
    # Join-heavy grid: instances far above MIN_TUPLES, vector engages.
    "lattice[0]": lambda: build_det_abstraction(lattice_dcds(0), 100000),
    "lattice[1]": lambda: build_det_abstraction(lattice_dcds(1), 100000),
    # Gallery builds (nondeterministic ones go through rcycl).
    "example_43": lambda: _build(
        example_43(ServiceSemantics.NONDETERMINISTIC)),
    "student_registry": lambda: _build(student_registry()),
    # Seeded random specs (tiny instances: below MIN_TUPLES the vector
    # path stands aside — the modes must agree regardless).
    "random[0]": lambda: build_det_abstraction(random_dcds(0), 20000),
    "random[2]": lambda: build_det_abstraction(random_dcds(2), 20000),
}


def build_in_mode(name: str, mode: str, monkeypatch):
    for switch in SWITCHES:
        monkeypatch.delenv(switch, raising=False)
    for switch, value in MODES[mode].items():
        monkeypatch.setenv(switch, value)
    clear_subproblem_caches()
    return BUILDERS[name]()


class TestTransitionSystemParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_modes_build_identical_systems(self, name, monkeypatch):
        systems = {mode: build_in_mode(name, mode, monkeypatch)
                   for mode in MODES}
        baseline = systems["reference"]
        for mode, ts in systems.items():
            assert ts.states == baseline.states, (name, mode)
            assert Counter(ts.edges()) == Counter(baseline.edges()), \
                (name, mode)
            assert {s: ts.db(s) for s in ts.states} \
                == {s: baseline.db(s) for s in baseline.states}, (name, mode)
            assert ts.truncated_states == baseline.truncated_states, \
                (name, mode)

    @vector_live
    def test_vector_counters_tick_on_join_heavy_build(self, monkeypatch):
        for switch in SWITCHES:
            monkeypatch.delenv(switch, raising=False)
        clear_subproblem_caches()
        ts = build_det_abstraction(lattice_dcds(1), 100000)
        stats = ts.exploration_stats["vector"]
        assert stats["enabled"]
        assert stats["effect_evals"] > 0
        assert stats["rows_peak"] > 0
        # The lattice rule fires unconditionally ("true"), so the legal-
        # substitution path has no join to vectorize there; a conditioned
        # parameterized rule over a same-scale instance ticks it.
        ts = build_det_abstraction(conditioned_grid(), 1000)
        assert ts.exploration_stats["vector"]["legal_evals"] > 0


# ---------------------------------------------------------------------------
# Checker parity: bitset vs sets vs reference
# ---------------------------------------------------------------------------

def graph_ts(n: int, chords: bool) -> TransitionSystem:
    """Ring with optional chords (chords=False gives the long-diameter
    chain-with-back-edge the bitset backend is built for)."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, 0, name=f"graph[{n},{chords}]")
    for i in range(n):
        facts = [fact("P", f"v{i % 5}")]
        if (chords and i % 3 == 0) or (not chords and i == n - 1):
            facts.append(fact("Q", f"v{(i + 1) % 5}"))
        ts.add_state(i, Instance(facts))
    for i in range(n):
        ts.add_edge(i, (i + 1) % n)
        if chords:
            ts.add_edge(i, (i * 7 + 3) % n)
    return ts


def checker_formulas():
    probe = parse_mu("Q('v1')")
    infinitely_often = Nu("X", Mu("Y", MOr.of(
        MAnd.of(probe, Diamond(PredVar("X"))), Diamond(PredVar("Y")))))
    return {
        "EF": EF(probe),
        "inf-often": infinitely_often,
        "quantified": Nu("X", Mu("Y", MOr.of(
            MAnd.of(parse_mu("E x. live(x) & Q(x)"), Diamond(PredVar("X"))),
            Diamond(PredVar("Y"))))),
        "AG-deadlock-free": parse_mu("nu X. (<-> true) & [-] X"),
    }


class TestCheckerParity:
    @pytest.mark.parametrize("name", sorted(checker_formulas()))
    @pytest.mark.parametrize("chords", [True, False])
    def test_three_way_extensions(self, name, chords, monkeypatch):
        ts = graph_ts(90, chords)
        formula = checker_formulas()[name]
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        bitset_ext = ModelChecker(ts).evaluate(formula)
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        sets_ext = ModelChecker(ts).evaluate(formula)
        reference_ext = ModelChecker(ts, compiled=False).evaluate(formula)
        assert bitset_ext == sets_ext == reference_ext, (name, chords)

    def test_backend_labels_and_midrun_flip(self, monkeypatch):
        ts = graph_ts(30, chords=True)
        formula = checker_formulas()["EF"]
        checker = ModelChecker(ts)
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        first = checker.evaluate(formula)
        assert checker.last_checking_stats["mode"] == "compiled"
        assert checker.last_checking_stats["backend"] == "bitset"
        # Flipping the switch mid-session reroutes the SAME checker: the
        # engine cache is keyed by backend, so no stale engine answers.
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        second = checker.evaluate(formula)
        assert checker.last_checking_stats["backend"] == "sets"
        assert first == second

    def test_bitset_respects_predicate_valuation(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        ts = graph_ts(20, chords=True)
        formula = Diamond(PredVar("X"))
        target = frozenset([5, 6])
        compiled = ModelChecker(ts).evaluate(formula, predicates={"X": target})
        reference = ModelChecker(ts, compiled=False).evaluate(
            formula, predicates={"X": target})
        assert compiled == reference


# ---------------------------------------------------------------------------
# Backend-selection plumbing: switches, heuristics, fallbacks
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_kill_switch_disables_binding_matrix(self, monkeypatch):
        table = TermTable()
        plan = CompiledQuery(Atom("R", (x, y)), table)
        coded = encode(table, dense_instance(0))
        domain = plan.domain(coded, table, frozenset())
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        assert not vector.vector_enabled()
        assert vector.binding_matrix(plan, coded, domain) is None

    def test_no_numpy_hook(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not vector.numpy_available()
        assert not vector.vector_enabled()
        with pytest.raises(vector.VectorUnsupported):
            vector.require_numpy()

    @vector_live
    def test_small_instances_take_the_interpreted_path(self):
        table = TermTable()
        plan = CompiledQuery(Atom("R", (x, y)), table)
        coded = encode(table, Instance([fact("R", "a", "b")]))
        domain = plan.domain(coded, table, frozenset())
        assert not vector.worth_vectorizing(coded)
        assert vector.binding_matrix(plan, coded, domain) is None

    @vector_live
    def test_row_budget_overflow_falls_back(self, monkeypatch):
        table = TermTable()
        # Cross product of two independent atoms: working set grows to
        # |R|^2 rows, beyond the tiny budget patched in below.
        plan = CompiledQuery(
            And.of(Atom("R", (x, y)), Atom("R", (z, z))), table)
        coded = encode(table, dense_instance(0))
        domain = plan.domain(coded, table, frozenset())
        monkeypatch.setattr(vector, "MAX_ROWS", 4)
        stats = {"fallbacks": 0}
        assert vector.binding_matrix(plan, coded, domain,
                                     stats=stats) is None
        assert stats["fallbacks"] == 1
