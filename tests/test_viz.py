"""DOT export."""

import pytest

from repro.analysis import dataflow_graph, dependency_graph
from repro.gallery import example_41, example_43, request_system
from repro.semantics import build_det_abstraction
from repro.viz import (
    dataflow_graph_to_dot, dependency_graph_to_dot,
    transition_system_to_dot)


class TestTransitionSystemDot:
    def test_valid_digraph(self, ex41_abstraction):
        dot = transition_system_to_dot(ex41_abstraction)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == ex41_abstraction.edge_count()

    def test_initial_state_bold(self, ex41_abstraction):
        dot = transition_system_to_dot(ex41_abstraction)
        assert "style=bold" in dot

    def test_max_states_truncates(self, ex41_abstraction):
        dot = transition_system_to_dot(ex41_abstraction, max_states=2)
        node_lines = [line for line in dot.splitlines()
                      if "label=" in line and "->" not in line]
        assert len(node_lines) == 2

    def test_labels_escaped(self):
        from repro.relational import DatabaseSchema, Instance, fact
        from repro.semantics import TransitionSystem

        schema = DatabaseSchema.of("R/1")
        ts = TransitionSystem(schema, "s0")
        ts.add_state("s0", Instance([fact("R", 'va"lue')]))
        dot = transition_system_to_dot(ts)
        assert '\\"' in dot  # the embedded double quote is escaped


class TestAnalysisDot:
    def test_dependency_graph_dot(self, ex43_det):
        dot = dependency_graph_to_dot(dependency_graph(ex43_det))
        assert "digraph" in dot
        assert 'label="*"' in dot          # the special edge is starred
        assert "R,1" in dot                # paper position naming (1-based)

    def test_dataflow_graph_dot(self):
        dot = dataflow_graph_to_dot(dataflow_graph(request_system()))
        assert "true" in dot
        assert "Hotel" in dot
        assert dot.count('label="*"') >= 10  # the input-service bundles
