"""Engine parity: the unified Explorer reproduces the seed builders exactly.

The four state-space builders were refactored onto
:class:`repro.engine.Explorer`. These tests pin their output against
independent reference implementations that replay the seed algorithms'
loops (hand-rolled BFS over the execution primitives), for every gallery
DCDS under both service semantics where the construction is feasible.

Parity is asserted structurally (equal state sets, equal edge sets — which
implies isomorphism) and, for representatives, semantically via the
bisimulation checkers.
"""

from collections import deque
from itertools import product

import pytest

from repro.bisim import BisimMode, bisimilar, bounded_bisimilar
from repro.core import ServiceSemantics
from repro.core.execution import do_action, enabled_moves, evaluate_calls
from repro.engine.generators import DetState, sigma_key, sorted_call_map
from repro.gallery import (
    audit_system, example_41, example_43, library_system, request_system,
    student_registry)
from repro.relational.values import Fresh
from repro.semantics import (
    DeterministicOracle, build_det_abstraction, explore_concrete, rcycl,
    simulate)
from repro.semantics.commitments import enumerate_commitments
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


# ---------------------------------------------------------------------------
# Reference implementations (the seed builders' loops, replayed verbatim)
# ---------------------------------------------------------------------------

def reference_det_abstraction(dcds, max_states=20000):
    initial = DetState(dcds.initial, ())
    ts = TransitionSystem(dcds.schema, initial)
    ts.add_state(initial, dcds.initial)
    known_constants = dcds.known_constants()
    queue = deque([initial])
    while queue:
        state = queue.popleft()
        call_map = state.map_dict()
        known = state.known_values() | known_constants
        for action, sigma in enabled_moves(dcds, state.instance):
            pending = do_action(dcds, state.instance, action, sigma)
            calls = pending.service_calls()
            resolved = {call: call_map[call]
                        for call in calls if call in call_map}
            new_calls = sorted(
                (call for call in calls if call not in call_map), key=repr)
            for commitment in enumerate_commitments(new_calls, known):
                successor_instance = evaluate_calls(
                    dcds, pending, {**resolved, **commitment})
                if successor_instance is None:
                    continue
                extended = dict(call_map)
                extended.update(commitment)
                successor = DetState(successor_instance,
                                     sorted_call_map(extended))
                is_new = successor not in ts
                ts.add_state(successor, successor_instance)
                ts.add_edge(state, successor, None)
                if is_new:
                    assert len(ts) <= max_states
                    queue.append(successor)
    return ts


def reference_rcycl(dcds, max_states=20000):
    initial = dcds.initial
    ts = TransitionSystem(dcds.schema, initial)
    ts.add_state(initial, initial)
    initial_adom = set(dcds.data.initial_adom)
    known_constants = set(dcds.known_constants())
    used_values = set(initial_adom) | known_constants
    visited = set()
    queue = deque([initial])
    while queue:
        instance = queue.popleft()
        for action, sigma in enabled_moves(dcds, instance):
            key = (instance, action.name, sigma_key(sigma))
            if key in visited:
                continue
            visited.add(key)
            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            recyclable = sorted_values(
                used_values - (initial_adom | set(instance.active_domain())))
            if len(recyclable) >= len(calls):
                candidates = recyclable[:len(calls)]
            else:
                taken = {v.index for v in used_values if isinstance(v, Fresh)}
                candidates, index = [], 0
                while len(candidates) < len(calls):
                    if index not in taken:
                        candidates.append(Fresh(index))
                        taken.add(index)
                    index += 1
            evaluation_range = sorted_values(
                initial_adom | known_constants
                | set(instance.active_domain()) | set(candidates))
            for combo in product(evaluation_range, repeat=len(calls)):
                successor = evaluate_calls(dcds, pending,
                                           dict(zip(calls, combo)))
                if successor is None:
                    continue
                is_new = successor not in ts
                ts.add_state(successor, successor)
                ts.add_edge(instance, successor, None)
                if is_new:
                    assert len(ts) <= max_states
                    used_values |= set(successor.active_domain())
                    queue.append(successor)
    return ts


def reference_explore_concrete(dcds, pool, depth):
    pool = sorted_values(set(pool))
    deterministic = dcds.semantics is ServiceSemantics.DETERMINISTIC
    initial = DetState(dcds.initial, ()) if deterministic else dcds.initial
    ts = TransitionSystem(dcds.schema, initial)
    ts.add_state(initial, dcds.initial)
    queue = deque([(initial, 0)])
    while queue:
        state, level = queue.popleft()
        if level >= depth:
            ts.mark_truncated(state)
            continue
        instance = state.instance if deterministic else state
        call_map = state.map_dict() if deterministic else {}
        for action, sigma in enabled_moves(dcds, instance):
            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            resolved = {call: call_map[call] for call in calls
                        if call in call_map}
            new_calls = [call for call in calls if call not in call_map]
            for combo in product(pool, repeat=len(new_calls)):
                evaluation = dict(resolved)
                evaluation.update(zip(new_calls, combo))
                successor_instance = evaluate_calls(dcds, pending, evaluation)
                if successor_instance is None:
                    continue
                if deterministic:
                    extended = dict(call_map)
                    extended.update(zip(new_calls, combo))
                    successor = DetState(successor_instance,
                                         sorted_call_map(extended))
                else:
                    successor = successor_instance
                is_new = successor not in ts
                ts.add_state(successor, successor_instance)
                ts.add_edge(state, successor, action.name)
                if is_new:
                    queue.append((successor, level + 1))
    return ts


def reference_simulate(dcds, steps, oracle, chooser=None):
    trace = [(dcds.initial, None)]
    current = dcds.initial
    for _ in range(steps):
        moves = list(enabled_moves(dcds, current))
        if not moves:
            break
        action, sigma = moves[0 if chooser is None else chooser(moves)]
        pending = do_action(dcds, current, action, sigma)
        evaluation = {call: oracle(call)
                      for call in sorted(pending.service_calls(), key=repr)}
        successor = evaluate_calls(dcds, pending, evaluation)
        if successor is None:
            break
        trace.append((successor, action.name))
        current = successor
    return trace


def assert_structurally_equal(engine_ts, reference_ts):
    """Equal state/edge sets — a (trivial) isomorphism witness."""
    assert engine_ts.initial == reference_ts.initial
    assert engine_ts.states == reference_ts.states
    assert len(engine_ts) == len(reference_ts)
    engine_edges = {(s, t) for s, _, t in engine_ts.edges()}
    reference_edges = {(s, t) for s, _, t in reference_ts.edges()}
    assert engine_edges == reference_edges
    assert engine_ts.truncated_states == reference_ts.truncated_states
    for state in engine_ts.states:
        assert engine_ts.db(state) == reference_ts.db(state)


# ---------------------------------------------------------------------------
# gallery/basic.py
# ---------------------------------------------------------------------------

class TestBasicGallery:
    def test_ex41_det_abstraction_parity(self):
        dcds = example_41()
        assert_structurally_equal(build_det_abstraction(dcds),
                                  reference_det_abstraction(dcds))

    def test_ex41_nondet_rcycl_parity(self):
        dcds = example_41(ServiceSemantics.NONDETERMINISTIC)
        assert_structurally_equal(rcycl(dcds), reference_rcycl(dcds))

    def test_ex43_nondet_rcycl_parity_and_bisimilarity(self):
        dcds = example_43(ServiceSemantics.NONDETERMINISTIC)
        engine_ts = rcycl(dcds)
        reference_ts = reference_rcycl(dcds)
        assert_structurally_equal(engine_ts, reference_ts)
        assert bisimilar(engine_ts, reference_ts,
                         mode=BisimMode.PERSISTENCE)

    def test_ex43_det_pool_exploration_parity(self):
        dcds = example_43()
        pool = ["a", Fresh(50)]
        assert_structurally_equal(
            explore_concrete(dcds, pool, depth=3),
            reference_explore_concrete(dcds, pool, depth=3))


# ---------------------------------------------------------------------------
# gallery/library.py
# ---------------------------------------------------------------------------

class TestLibraryGallery:
    def test_rcycl_parity(self):
        dcds = library_system(books=1, members=1)
        assert_structurally_equal(rcycl(dcds), reference_rcycl(dcds))

    def test_det_pool_parity_and_bounded_bisimilarity(self):
        dcds = library_system(books=1, members=1,
                              semantics=ServiceSemantics.DETERMINISTIC)
        pool = ["b0", "m0", Fresh(60)]
        engine_ts = explore_concrete(dcds, pool, depth=2)
        reference_ts = reference_explore_concrete(dcds, pool, depth=2)
        assert_structurally_equal(engine_ts, reference_ts)
        assert bounded_bisimilar(engine_ts, reference_ts, depth=2,
                                 mode=BisimMode.PERSISTENCE)


# ---------------------------------------------------------------------------
# gallery/student.py
# ---------------------------------------------------------------------------

class TestStudentGallery:
    def test_rcycl_parity(self):
        dcds = student_registry()
        assert_structurally_equal(rcycl(dcds), reference_rcycl(dcds))

    def test_nondet_pool_parity(self):
        dcds = student_registry()
        pool = ["idle", Fresh(70), Fresh(71)]
        assert_structurally_equal(
            explore_concrete(dcds, pool, depth=2),
            reference_explore_concrete(dcds, pool, depth=2))

    def test_simulate_parity(self):
        dcds = student_registry(ServiceSemantics.DETERMINISTIC)
        engine_trace = simulate(dcds, steps=4, oracle=DeterministicOracle())
        reference_trace = reference_simulate(dcds, steps=4,
                                             oracle=DeterministicOracle())
        assert engine_trace == reference_trace


# ---------------------------------------------------------------------------
# gallery/travel.py
# ---------------------------------------------------------------------------

class TestTravelGallery:
    def test_request_system_rcycl_parity(self):
        dcds = request_system(slim=True)
        assert_structurally_equal(rcycl(dcds), reference_rcycl(dcds))

    def test_audit_system_det_abstraction_parity(self):
        dcds = audit_system(slim=True)
        assert_structurally_equal(build_det_abstraction(dcds),
                                  reference_det_abstraction(dcds))
