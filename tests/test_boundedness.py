"""Semantic boundedness probes (run-/state-boundedness evidence)."""

import pytest

from repro.analysis import (
    Verdict, probe_run_bounded, probe_state_bounded)
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_42, example_43, example_52


class TestRunBoundedProbe:
    def test_ex41_bounded(self, ex41):
        result = probe_run_bounded(ex41)
        assert result.is_bounded
        assert result.bound == 3  # a, f(a), g(a)
        assert result.states_explored == 10

    def test_ex42_bounded(self, ex42):
        result = probe_run_bounded(ex42)
        assert result.is_bounded
        assert result.bound <= 3

    def test_ex43_divergence_suspected(self, ex43_det):
        result = probe_run_bounded(ex43_det, max_states=200)
        assert result.verdict is Verdict.DIVERGENCE_SUSPECTED
        assert not result.is_bounded
        assert result.bound is None
        assert result.states_explored > 200

    def test_probe_coerces_semantics(self, ex43_nondet):
        # The run-boundedness probe is about the deterministic semantics;
        # it should coerce a nondet-flavoured DCDS rather than fail.
        result = probe_run_bounded(ex43_nondet, max_states=200)
        assert result.verdict is Verdict.DIVERGENCE_SUSPECTED


class TestStateBoundedProbe:
    def test_ex43_state_bounded(self, ex43_nondet):
        result = probe_state_bounded(ex43_nondet)
        assert result.is_bounded
        assert result.bound == 1  # single tuple per state (Example 5.1)

    def test_ex52_divergence_suspected(self, ex52):
        result = probe_state_bounded(ex52, max_states=150)
        assert result.verdict is Verdict.DIVERGENCE_SUSPECTED
        assert max(result.growth_trace) >= 3  # growing active domains

    def test_ex41_state_bounded(self, ex41):
        result = probe_state_bounded(ex41)
        assert result.is_bounded
        assert result.bound <= 3

    def test_repr_readable(self, ex41, ex52):
        assert "bounded" in repr(probe_run_bounded(ex41))
        assert "divergence" in repr(
            probe_state_bounded(ex52, max_states=100))
