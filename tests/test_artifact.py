"""Artifact-system compilation (Section 6)."""

import pytest

from repro.core import ServiceSemantics
from repro.errors import ProcessError
from repro.fol import atom, parse_formula
from repro.fol.ast import Atom, TRUE
from repro.reductions import (
    ArtifactAction, ArtifactSystem, ArtifactType, ExternalInput,
    PostTemplate, compile_to_dcds)
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Var
from repro.semantics import NondeterministicOracle, simulate


@pytest.fixture
def order_system():
    """A one-artifact ordering process: draft -> priced."""
    order = ArtifactType("Order", ("id", "status", "price"))
    price_action = ArtifactAction(
        name="price",
        params=(),
        pre=parse_formula("exists i, p. Order(i, 'draft', p)"),
        post=(PostTemplate(
            parse_formula("Order(i, 'draft', p)"),
            (Atom("Order", (Var("i"), "priced",
                            ExternalInput("price", (Var("i"),)))),),
        ),),
    )
    return ArtifactSystem(
        types=(order,),
        database=DatabaseSchema.of("Catalog/1"),
        actions=(price_action,),
        initial=Instance([fact("Order", "o1", "draft", "none"),
                          fact("Catalog", "widget")]),
        name="orders")


class TestArtifactTypes:
    def test_id_attribute_required(self):
        with pytest.raises(ProcessError):
            ArtifactType("Bad", ("status",))

    def test_arity(self):
        assert ArtifactType("Order", ("id", "x")).arity == 2


class TestCompilation:
    def test_schema_includes_types_and_database(self, order_system):
        dcds = compile_to_dcds(order_system)
        assert "Order" in dcds.schema
        assert "Catalog" in dcds.schema
        assert dcds.semantics is ServiceSemantics.NONDETERMINISTIC

    def test_external_inputs_become_services(self, order_system):
        dcds = compile_to_dcds(order_system)
        functions = {f.name: f.arity for f in dcds.process.functions}
        assert functions == {"in_price": 1}

    def test_id_uniqueness_constraints(self, order_system):
        dcds = compile_to_dcds(order_system)
        # id determines the other two attributes: two FDs.
        assert len(dcds.data.constraints) == 2
        duplicate = Instance([fact("Order", "o1", "a", "b"),
                              fact("Order", "o1", "a", "c")])
        assert not dcds.data.satisfies_constraints(duplicate)

    def test_execution(self, order_system):
        dcds = compile_to_dcds(order_system)
        trace = simulate(dcds, steps=1,
                         oracle=NondeterministicOracle(seed=5))
        assert len(trace) == 2
        final = trace[-1][0]
        orders = final.tuples("Order")
        assert len(orders) == 1
        order = next(iter(orders))
        assert order[1] == "priced"

    def test_precondition_gates_action(self, order_system):
        dcds = compile_to_dcds(order_system)
        # After pricing there is no draft order left: the process deadlocks.
        trace = simulate(dcds, steps=3,
                         oracle=NondeterministicOracle(seed=5))
        assert len(trace) == 2
