"""The exception hierarchy and its diagnostic payloads."""

import pytest

from repro.errors import (
    AbstractionDiverged, CheckpointError, ConstraintViolation,
    ExecutionError, FormulaError, FragmentError, IllegalParameters,
    InstanceError, MonotonicityError, ParseError, ProcessError, ReproError,
    SchemaError, UndecidableFragment, VerificationError, WireIntegrityError,
    WorkerCrashError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        SchemaError, InstanceError, ConstraintViolation, FormulaError,
        ParseError, FragmentError, MonotonicityError, ProcessError,
        ExecutionError, IllegalParameters, AbstractionDiverged,
        UndecidableFragment, VerificationError, WorkerCrashError,
        WireIntegrityError, CheckpointError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_is_formula_error(self):
        assert issubclass(ParseError, FormulaError)

    def test_illegal_parameters_is_execution_error(self):
        assert issubclass(IllegalParameters, ExecutionError)


class TestPayloads:
    def test_parse_error_position_context(self):
        error = ParseError("boom", text="R(x) & & S(y)", pos=7)
        assert "position 7" in str(error)
        assert error.pos == 7

    def test_parse_error_without_position(self):
        error = ParseError("boom")
        assert str(error) == "boom"

    def test_abstraction_diverged_payload(self):
        error = AbstractionDiverged("grew", growth_trace=(1, 2, 4),
                                    partial_states=7)
        assert error.growth_trace == (1, 2, 4)
        assert error.partial_states == 7

    def test_undecidable_fragment_theorem(self):
        error = UndecidableFragment("nope", theorem="Theorem 5.2")
        assert error.theorem == "Theorem 5.2"

    def test_worker_crash_payload(self):
        error = WorkerCrashError("worker 2 died", worker=2, reason="died",
                                 exitcode=17, batches_lost=3)
        assert error.worker == 2
        assert error.reason == "died"
        assert error.exitcode == 17
        assert error.batches_lost == 3

    def test_worker_crash_defaults(self):
        error = WorkerCrashError("boom")
        assert error.worker == -1
        assert error.reason == ""
        assert error.exitcode is None
        assert error.batches_lost == 0

    def test_wire_integrity_link(self):
        error = WireIntegrityError("crc mismatch", link=4)
        assert error.link == 4
        assert WireIntegrityError("short frame").link is None

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise UndecidableFragment("x")
