"""Dependency graphs (Fig 5, 10) and dataflow graphs (Fig 8, 9)."""

import pytest

from repro.analysis import (
    TRUE_NODE, dataflow_graph, dependency_graph, is_gr_acyclic,
    is_gr_plus_acyclic, is_weakly_acyclic, positive_approximate)
from repro.core import ServiceSemantics
from repro.gallery import (
    audit_system, example_41, example_42, example_43, example_52,
    example_53, request_system, student_registry)
from repro.workloads import chain_dcds


class TestFigure5:
    """Dependency graphs and weak acyclicity."""

    def test_ex41_weakly_acyclic(self, ex41):
        graph = dependency_graph(ex41)
        assert graph.is_weakly_acyclic()
        # Fig 5(a): special edges P,1 -> Q,1 and P,1 -> Q,2.
        assert set(graph.special_edges()) == {
            (("P", 0), ("Q", 0)), (("P", 0), ("Q", 1))}
        # Ordinary edges: P,1 -> R,1 and P,1 -> P,1.
        assert (("P", 0), ("R", 0)) in graph.ordinary_edges()
        assert (("P", 0), ("P", 0)) in graph.ordinary_edges()

    def test_ex42_same_graph(self, ex41, ex42):
        # Examples 4.1/4.2 share the dataflow structure (Fig 5(a)).
        first = dependency_graph(ex41)
        second = dependency_graph(ex42)
        assert set(first.edges()) == set(second.edges())

    def test_ex43_not_weakly_acyclic(self, ex43_det):
        graph = dependency_graph(ex43_det)
        assert not graph.is_weakly_acyclic()
        assert graph.violating_special_edge() == (("R", 0), ("Q", 0))

    def test_ranks_on_chain(self):
        graph = dependency_graph(chain_dcds(3))
        ranks = graph.ranks()
        assert ranks[("L0", 0)] == 0
        assert ranks[("L1", 0)] == 1
        assert ranks[("L3", 0)] == 3

    def test_ranks_rejected_when_cyclic(self, ex43_det):
        with pytest.raises(ValueError):
            dependency_graph(ex43_det).ranks()

    def test_describe(self, ex43_det):
        text = dependency_graph(ex43_det).describe()
        assert "NOT weakly acyclic" in text


class TestFigure8:
    """Dataflow graphs and GR-acyclicity."""

    def test_ex41_gr_acyclic(self, ex41):
        assert is_gr_acyclic(ex41)

    def test_ex43_gr_acyclic(self, ex43_nondet):
        # Example 5.1: the R->Q->R cycle contains the special edge itself,
        # so there is no generate cycle *feeding* a recall cycle.
        assert is_gr_acyclic(ex43_nondet)

    def test_ex52_not_gr_acyclic(self, ex52):
        graph = dataflow_graph(ex52)
        assert not graph.is_gr_acyclic()
        witness = graph.gr_violation()
        assert witness.special
        assert (witness.source, witness.target) == ("R", "Q")

    def test_ex52_not_gr_plus(self, ex52):
        # Single action: nothing is ever "not simultaneously active".
        assert not is_gr_plus_acyclic(ex52)

    def test_ex53_parallel_special_self_loops(self, ex53):
        graph = dataflow_graph(ex53)
        specials = graph.special_edges()
        assert len(specials) == 2  # two distinct edges R -> R (Fig 8(c))
        assert not graph.is_gr_acyclic()
        assert not graph.is_gr_plus_acyclic()

    def test_gr_witness_structure(self, ex52):
        graph = dataflow_graph(ex52)
        witness = graph.gr_plus_violation()
        assert witness is not None
        assert any(edge.special for edge in witness.connecting_path)


class TestFigure9:
    """The request system: not GR-acyclic, GR+-acyclic."""

    @pytest.fixture(scope="class")
    def graph(self):
        return dataflow_graph(request_system())

    def test_has_true_node(self, graph):
        assert TRUE_NODE in graph.nodes
        # Figure 9's nodes plus our Decision relation (which pins the
        # monitor's output to the two legal decisions).
        assert graph.nodes == {TRUE_NODE, "Status", "Travel", "Hotel",
                               "Flight", "Decision"}

    def test_true_self_loop_present(self, graph):
        loops = [edge for edge in graph.edges
                 if edge.source == TRUE_NODE and edge.target == TRUE_NODE]
        assert len(loops) == 1
        assert len(loops[0].actions) == 4  # built-in copy in every action

    def test_multiple_special_edges_to_hotel(self, graph):
        hotel_specials = [edge for edge in graph.edges
                          if edge.target == "Hotel" and edge.special]
        assert len(hotel_specials) == 10  # 5 from Initiate + 5 from Update

    def test_not_gr_acyclic(self, graph):
        assert not graph.is_gr_acyclic()

    def test_gr_plus_acyclic(self, graph):
        assert graph.is_gr_plus_acyclic()

    def test_slim_variant_same_verdicts(self):
        graph = dataflow_graph(request_system(slim=True))
        assert not graph.is_gr_acyclic()
        assert graph.is_gr_plus_acyclic()


class TestFigure10:
    """The audit system: weakly acyclic."""

    def test_weakly_acyclic(self):
        graph = dependency_graph(audit_system())
        assert graph.is_weakly_acyclic()

    def test_special_edges_into_passed_positions(self):
        graph = dependency_graph(audit_system())
        special_targets = {target for _, target in graph.special_edges()}
        assert ("Hotel", 6) in special_targets   # the `passed` position
        assert ("Flight", 6) in special_targets

    def test_position_count(self):
        graph = dependency_graph(audit_system())
        # Status/1 + Travel/3 + Hotel/7 + Flight/7 = 18 positions (Fig 10).
        assert len(graph.nodes) == 18

    def test_slim_variant(self):
        assert is_weakly_acyclic(audit_system(slim=True))


class TestStudentRegistry:
    def test_not_gr_but_gr_plus(self, students):
        graph = dataflow_graph(students)
        assert not graph.is_gr_acyclic()
        assert graph.is_gr_plus_acyclic()


class TestPositiveApproximate:
    def test_rules_become_true(self, ex41):
        approx = positive_approximate(ex41)
        from repro.fol.ast import TrueF

        assert all(isinstance(rule.query, TrueF)
                   for rule in approx.process.rules)

    def test_constraints_dropped(self, ex42):
        approx = positive_approximate(ex42)
        assert approx.data.constraints == ()

    def test_negative_filters_dropped(self):
        from repro.core import DCDSBuilder
        from repro.fol.ast import TrueF

        builder = DCDSBuilder(name="nf")
        builder.schema("R/1", "S/1")
        builder.initial("R('a')")
        builder.action("go", "R(x) & ~S(x) ~> S(x)")
        builder.rule("true", "go")
        approx = positive_approximate(builder.build())
        effect = approx.process.actions[0].effects[0]
        assert isinstance(effect.q_minus, TrueF)

    def test_parameters_become_variables(self):
        from repro.core import DCDSBuilder

        builder = DCDSBuilder(name="pv")
        builder.schema("R/1", "S/1")
        builder.initial("R('a')")
        builder.action("go(p)", "R($p) ~> S($p)")
        builder.rule("R($p)", "go")
        approx = positive_approximate(builder.build())
        action = approx.process.action("go+")
        assert action.params == ()
        assert not action.effects[0].parameters()
