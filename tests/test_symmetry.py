"""Symmetry-reduced exploration: quotient-by-construction (Lemma C.2).

Four pillars:

* **Canonical-labeling property tests** — both the object-level
  ``canonical_form`` and the kernel-coded
  ``RelationalKernel.canonical_renaming`` produce equal keys for exactly
  the instances isomorphic via bijections fixing ``ADOM(I0)`` (pinned
  against ``iter_isomorphisms``/``are_isomorphic`` ground truth on seeded
  ``random_dcds`` instances and renamed twins), and the joint ``<I, M>``
  canonicalization merges history-swapped deterministic states.

* **Quotient differential** — for every gallery DCDS and a >=20-case
  seeded ``random_dcds`` sweep, the quotient-mode transition system is
  persistence-preserving bisimilar to the exact-mode one
  (``bisim/core.py``), never larger, and the quotient build is
  bit-identical across workers 1/2/4 (the acceptance gate of PR 5).
  Reduction applies to the history-carrying ``<I, M>`` constructions
  (deterministic abstraction, pool-det); plain-instance systems admit no
  sound quotient (the keep-vs-swap conflation documented in
  ``repro.engine.symmetry``), so for them quotient mode must be an exact
  no-op — also asserted here.

* **Adequacy gate** — ``verify(..., symmetry="quotient")`` refuses
  non-µLP formulas and formulas naming constants the quotient does not
  fix; ``REPRO_NO_SYMMETRY=1`` kills the reduction everywhere.

* **Interner/parallel regressions** — the ``InternEntry`` single-``fixed``
  contract, canonical-first interning, and the ``workers=1`` inline
  short-circuit (zero ``ipc_bytes_sent``).
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.bisim import BisimMode, bisimilar, bounded_bisimilar
from repro.core import DCDSBuilder, ServiceSemantics
from repro.engine import (
    DetAbstractionGenerator, DetState, Explorer, ParallelExplorer,
    PoolDetGenerator, PoolNondetGenerator, StateInterner, SymmetryReducer,
    resolve_symmetry, sorted_call_map)
from repro.errors import ReproError, VerificationError
from repro.gallery import (
    audit_system, example_41, example_42, example_43, example_52,
    example_53, library_system, request_system, student_registry,
    theorem_45_witness)
from repro.gallery.library import property_loaned_books_off_shelf
from repro.gallery.student import property_eventual_graduation_mu_la
from repro.mucalc.parser import parse_mu
from repro.pipeline import verify
from repro.relational import Instance, fact
from repro.relational.isomorphism import (
    are_isomorphic, canonical_form, canonical_key)
from repro.relational.kernel import kernel_for
from repro.relational.values import Fresh, ServiceCall
from repro.semantics import explore_concrete, isomorphism_quotient
from repro.workloads import random_dcds

KILL_SWITCH = bool(os.environ.get("REPRO_NO_SYMMETRY"))
MAX_WORKERS = max(1, int(os.environ.get("REPRO_WORKERS", "4")))
WORKER_COUNTS = tuple(sorted({1, 2, MAX_WORKERS}))

POOL = (Fresh(80), Fresh(81))
MAX_STATES = 2000
MAX_DEPTH = 2


# ---------------------------------------------------------------------------
# Shared builders
# ---------------------------------------------------------------------------

def exact_and_quotient(dcds, generator_factory, config):
    exact = Explorer(dcds.schema, **config).run(
        generator_factory()).transition_system
    quotient = Explorer(dcds.schema, **config).run(
        SymmetryReducer(generator_factory())).transition_system
    return exact, quotient


def assert_bit_identical(reference, other):
    assert reference.initial == other.initial
    assert reference.states == other.states
    assert Counter(reference.edges()) == Counter(other.edges())
    assert reference.truncated_states == other.truncated_states
    for state in reference.states:
        assert reference.db(state) == other.db(state)


def assert_quotient_adequate(exact, quotient, depth):
    """The Lemma C.2 gate: never larger, persistence-bisimilar to exact.

    The game runs against the exact system directly — full fixpoint when
    the systems are complete and small, depth-bounded at the truncation
    horizon otherwise.
    """
    assert len(quotient) <= len(exact)
    truncated = bool(exact.truncated_states or quotient.truncated_states)
    if not truncated and len(exact) <= 80:
        assert bisimilar(quotient, exact, BisimMode.PERSISTENCE)
    else:
        assert bounded_bisimilar(
            quotient, exact, depth, BisimMode.PERSISTENCE)


def assert_workers_agree(dcds, generator_factory, config, reference):
    for workers in WORKER_COUNTS:
        parallel = ParallelExplorer(
            dcds.schema, workers=workers, batch_size=4, **config,
        ).run(SymmetryReducer(generator_factory())).transition_system
        assert_bit_identical(reference, parallel)


def run_quotient_case(dcds, generator_factory, config, depth, workers=True):
    exact, quotient = exact_and_quotient(dcds, generator_factory, config)
    assert_quotient_adequate(exact, quotient, depth)
    if workers:
        assert_workers_agree(dcds, generator_factory, config, quotient)
    return exact, quotient


# ---------------------------------------------------------------------------
# Canonical labeling: property tests against isomorphism ground truth
# ---------------------------------------------------------------------------

def kernel_canonical_key(kernel, instance):
    renaming = kernel.canonical_instance_renaming(instance)
    canonical = instance.rename(renaming)
    return tuple(f.sort_key() for f in canonical.sorted_facts())


def lemma_c2_isomorphic(first, second, fixed):
    """Isomorphic via a bijection that is the identity on ``fixed`` on
    *both* sides — the equivalence canonical forms decide.

    ``iter_isomorphisms`` pins only the fixed values occurring in its
    first argument, so ``{R(u)} -> {R('c')}`` mapping a movable value onto
    an absent fixed constant counts as an isomorphism there; running the
    search both ways excludes exactly those movable<->fixed matches.
    """
    return are_isomorphic(first, second, fixed) \
        and are_isomorphic(second, first, fixed)


class TestCanonicalFormProperty:
    """Satellite: both canonical paths pinned against iter_isomorphisms."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_key_iff_isomorphic(self, seed):
        dcds = random_dcds(seed, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        fixed = frozenset(dcds.known_constants())
        ts = explore_concrete(dcds, pool=list(POOL) + ["c0"], depth=2,
                              max_states=2000)
        instances = sorted({ts.db(state) for state in ts.states},
                           key=repr)[:6]
        # Renamed twins: isomorphic by construction, different objects.
        swap = {POOL[0]: POOL[1], POOL[1]: POOL[0]}
        instances += [instance.rename(swap) for instance in instances[:3]]
        kernel = kernel_for(dcds)
        for first in instances:
            for second in instances:
                iso = lemma_c2_isomorphic(first, second, fixed)
                assert (canonical_key(first, fixed)
                        == canonical_key(second, fixed)) == iso, \
                    (first, second)
                if kernel is not None:
                    assert (kernel_canonical_key(kernel, first)
                            == kernel_canonical_key(kernel, second)) == iso, \
                        (first, second)

    @pytest.mark.parametrize("seed", range(4))
    def test_canonical_form_is_isomorphic_to_original(self, seed):
        dcds = random_dcds(seed, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        fixed = frozenset(dcds.known_constants())
        ts = explore_concrete(dcds, pool=list(POOL), depth=2,
                              max_states=2000)
        kernel = kernel_for(dcds)
        for state in sorted(ts.states, key=repr)[:6]:
            instance = ts.db(state)
            canonical, _ = canonical_form(instance, fixed)
            assert are_isomorphic(canonical, instance, fixed)
            if kernel is not None:
                coded = kernel.canonical_instance_renaming(instance)
                assert are_isomorphic(
                    instance.rename(coded), instance, fixed)

    def test_joint_canonicalization_merges_swapped_histories(self):
        """<I, M> states differing by a value swap across dead history
        entries land on the same representative."""
        dcds = _independent_minters(2)
        generator = SymmetryReducer(DetAbstractionGenerator(dcds))
        instance = Instance([fact("Seed", "c")])
        call_f = ServiceCall("f0", ("c",))
        call_g = ServiceCall("f1", ("c",))
        first = DetState(instance, sorted_call_map(
            {call_f: Fresh(0), call_g: Fresh(1)}))
        second = DetState(instance, sorted_call_map(
            {call_f: Fresh(1), call_g: Fresh(0)}))
        assert first != second
        assert generator.representative(first) \
            == generator.representative(second)
        # A third state whose history has a different equality pattern
        # must stay separate.
        collapsed = DetState(instance, sorted_call_map(
            {call_f: Fresh(0), call_g: Fresh(0)}))
        assert generator.representative(collapsed) \
            != generator.representative(first)


def _independent_minters(n):
    """``n`` independent actions, each minting one short-lived value."""
    builder = DCDSBuilder(name=f"indep[{n}]")
    builder.schema("Seed/1", *(f"Tmp{i}/1" for i in range(n)))
    builder.initial("Seed('c')")
    for index in range(n):
        builder.service(f"f{index}/1")
        builder.action(f"mint{index}", "Seed(x) ~> Seed(x)",
                       f"Seed(x) ~> Tmp{index}(f{index}(x))")
        builder.rule("true", f"mint{index}")
    return builder.build(ServiceSemantics.DETERMINISTIC)


# ---------------------------------------------------------------------------
# Quotient differential: gallery
# ---------------------------------------------------------------------------

TRUNCATING = dict(max_states=MAX_STATES, max_depth=MAX_DEPTH,
                  on_budget="truncate")

DET = ServiceSemantics.DETERMINISTIC

GALLERY_DET = [
    pytest.param(example_41, id="example_41"),
    pytest.param(example_42, id="example_42"),
    pytest.param(lambda: example_43(), id="example_43_det"),
    pytest.param(theorem_45_witness, id="theorem_45_witness"),
    pytest.param(lambda: audit_system(), id="audit_system"),
]

GALLERY_POOL_DET = [
    pytest.param(example_41, id="example_41"),
    pytest.param(lambda: example_43(), id="example_43_det"),
    pytest.param(lambda: library_system(semantics=DET),
                 id="library_system_det"),
    pytest.param(lambda: request_system(semantics=DET),
                 id="request_system_det"),
]

GALLERY_NONDET = [
    pytest.param(
        lambda: example_43(ServiceSemantics.NONDETERMINISTIC),
        id="example_43_nondet"),
    pytest.param(example_52, id="example_52"),
    pytest.param(example_53, id="example_53"),
    pytest.param(student_registry, id="student_registry"),
    pytest.param(library_system, id="library_system"),
    pytest.param(request_system, id="request_system"),
]


class TestQuotientDifferentialGallery:
    @pytest.mark.parametrize("factory", GALLERY_DET)
    def test_det_abstraction(self, factory):
        dcds = factory()
        run_quotient_case(
            dcds, lambda: DetAbstractionGenerator(dcds), TRUNCATING,
            MAX_DEPTH)

    @pytest.mark.parametrize("factory", GALLERY_POOL_DET)
    def test_pool_det_exploration(self, factory):
        dcds = factory()
        run_quotient_case(
            dcds, lambda: PoolDetGenerator(dcds, list(POOL)), TRUNCATING,
            MAX_DEPTH)

    @pytest.mark.parametrize("factory", GALLERY_NONDET)
    def test_nondet_pool_quotient_is_exact_noop(self, factory):
        """Plain-instance systems: quotient mode must not touch the build
        (no sound quotient exists — see repro.engine.symmetry)."""
        dcds = factory()
        exact = explore_concrete(dcds, pool=list(POOL), depth=MAX_DEPTH,
                                 max_states=50000)
        via_quotient = explore_concrete(
            dcds, pool=list(POOL), depth=MAX_DEPTH, max_states=50000,
            symmetry="quotient")
        assert_bit_identical(exact, via_quotient)
        assert "symmetry" not in via_quotient.exploration_stats


# ---------------------------------------------------------------------------
# Quotient differential: seeded random_dcds sweep (>= 20 cases)
# ---------------------------------------------------------------------------

# 5 seeds x 4 det-state configurations = 20 quotient differential cases,
# each checked bisimilar to exact and bit-identical at workers 1/2/4.
RANDOM_MATRIX = [
    ("weakly-acyclic", "abstraction"),
    ("free", "abstraction"),
    ("weakly-acyclic", "pool-det"),
    ("free", "pool-det"),
]
FAST_SEEDS = (0, 1)
SLOW_SEEDS = (2, 3, 4)


def random_case_params(seeds):
    return [
        pytest.param(seed, shape, construction,
                     id=f"seed{seed}-{shape}-{construction}")
        for seed in seeds
        for shape, construction in RANDOM_MATRIX
    ]


def run_random_case(seed, shape, construction):
    dcds = random_dcds(seed, shape=shape,
                       semantics=ServiceSemantics.DETERMINISTIC)
    if construction == "abstraction":
        factory = lambda: DetAbstractionGenerator(dcds)
    else:
        factory = lambda: PoolDetGenerator(dcds, list(POOL) + ["c0"])
    run_quotient_case(dcds, factory, TRUNCATING, MAX_DEPTH)


class TestQuotientDifferentialRandomFast:
    @pytest.mark.parametrize("seed,shape,construction",
                             random_case_params(FAST_SEEDS))
    def test_quotient_bisimilar_across_workers(self, seed, shape,
                                               construction):
        run_random_case(seed, shape, construction)


@pytest.mark.slow_differential
class TestQuotientDifferentialRandomSweep:
    @pytest.mark.parametrize("seed,shape,construction",
                             random_case_params(SLOW_SEEDS))
    def test_quotient_bisimilar_across_workers(self, seed, shape,
                                               construction):
        run_random_case(seed, shape, construction)


# ---------------------------------------------------------------------------
# State-count reduction (the point of the exercise)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(KILL_SWITCH, reason="REPRO_NO_SYMMETRY kill switch set")
class TestReduction:
    def test_fresh_pool_reduction_at_least_2x(self):
        """Dead stamp receipts cycling through the fresh pool collapse the
        deterministic library system's pool exploration by >= 2x (2.16x
        measured at depth 3)."""
        pool = [Fresh(80), Fresh(81), Fresh(82)]
        exact = explore_concrete(library_system(semantics=DET), pool=pool,
                                 depth=3, max_states=100000,
                                 symmetry="exact")
        quotient = explore_concrete(library_system(semantics=DET), pool=pool,
                                    depth=3, max_states=100000,
                                    symmetry="quotient")
        assert len(exact) >= 2 * len(quotient)
        stats = quotient.exploration_stats["symmetry"]
        assert stats["canonicalizations"] > 0

    def test_history_interleavings_merge(self):
        """Independent minting actions: A-then-B and B-then-A histories
        differ only by value names and merge under the joint quotient."""
        from repro.semantics import build_det_abstraction
        exact = build_det_abstraction(_independent_minters(3),
                                      max_states=100000, max_depth=3,
                                      symmetry="exact")
        quotient = build_det_abstraction(_independent_minters(3),
                                         max_states=100000, max_depth=3,
                                         symmetry="quotient")
        assert len(quotient) < len(exact)


# ---------------------------------------------------------------------------
# verify(): adequacy gate and end-to-end agreement
# ---------------------------------------------------------------------------

class TestVerifyQuotient:
    @pytest.mark.skipif(KILL_SWITCH, reason="gate disabled by kill switch")
    def test_non_mulp_formula_rejected(self):
        with pytest.raises(VerificationError, match="µLP"):
            verify(random_dcds(0), property_eventual_graduation_mu_la(),
                   symmetry="quotient")

    @pytest.mark.skipif(KILL_SWITCH, reason="gate disabled by kill switch")
    def test_foreign_constant_rejected(self):
        formula = parse_mu(
            "mu Z. ((E x. live(x) & R0(x, 'zzz')) | <-> Z)")
        with pytest.raises(VerificationError, match="constant"):
            verify(random_dcds(0), formula, symmetry="quotient")

    def test_nondet_route_ignores_quotient(self):
        """RCYCL's recycling is the nondeterministic symmetry mechanism;
        the route ignores symmetry= exactly like workers=."""
        formula = property_loaned_books_off_shelf()
        baseline = verify(library_system(), formula)
        via_quotient = verify(library_system(), formula,
                              symmetry="quotient")
        assert via_quotient.holds == baseline.holds
        assert via_quotient.route == baseline.route == "rcycl"
        assert via_quotient.symmetry == "exact"
        assert via_quotient.abstraction_stats["states"] \
            == baseline.abstraction_stats["states"]

    def test_det_route_quotient_agrees(self):
        dcds = random_dcds(0)
        formula = parse_mu("mu Z. ((E x. live(x) & R0(x)) | <-> Z)")
        baseline = verify(dcds, formula, max_states=3000, symmetry="exact")
        reduced = verify(random_dcds(0), formula, max_states=3000,
                         symmetry="quotient")
        assert reduced.holds == baseline.holds
        if not KILL_SWITCH:
            assert reduced.symmetry == "quotient"
            assert "symmetry" in reduced.abstraction_stats

    def test_kill_switch_forces_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SYMMETRY", "1")
        assert resolve_symmetry("quotient") == "exact"
        formula = parse_mu("mu Z. ((E x. live(x) & R0(x)) | <-> Z)")
        report = verify(random_dcds(0), formula, max_states=3000,
                        symmetry="quotient")
        assert report.symmetry == "exact"
        assert "symmetry" not in report.abstraction_stats

    def test_env_default_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SYMMETRY", raising=False)
        monkeypatch.setenv("REPRO_SYMMETRY", "quotient")
        assert resolve_symmetry(None) == "quotient"
        monkeypatch.setenv("REPRO_NO_SYMMETRY", "1")
        assert resolve_symmetry(None) == "exact"
        with pytest.raises(ReproError):
            resolve_symmetry("bogus")


# ---------------------------------------------------------------------------
# Reducer/gates and interner contract regressions
# ---------------------------------------------------------------------------

class TestReducerGates:
    def test_rcycl_stays_excluded(self):
        from repro.engine import RcyclGenerator
        dcds = random_dcds(0, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        with pytest.raises(ReproError, match="RCYCL"):
            SymmetryReducer(RcyclGenerator(dcds))

    def test_plain_instance_generators_excluded(self):
        """PoolNondet states carry no history: the keep-vs-swap conflation
        makes any quotient unsound, so the reducer refuses them."""
        dcds = random_dcds(0, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        with pytest.raises(ReproError, match="history"):
            SymmetryReducer(PoolNondetGenerator(dcds, list(POOL)))

    def test_reduce_fixed_compares_quotient_level(self):
        """bisimilar(reduce_fixed=) pre-quotients both sides: two exact
        pool explorations of the same spec stay quotient-level bisimilar,
        and history mode refuses the reduction."""
        dcds = example_53()
        fixed = frozenset(dcds.known_constants())
        first = explore_concrete(dcds, pool=list(POOL), depth=2,
                                 max_states=2000)
        second = explore_concrete(
            dcds, pool=[Fresh(90), Fresh(91)], depth=2, max_states=2000)
        assert not first.truncated_states  # saturates within the bound
        assert bisimilar(first, second, BisimMode.PERSISTENCE,
                         reduce_fixed=fixed)
        with pytest.raises(ReproError, match="persistence"):
            bisimilar(first, second, BisimMode.HISTORY, reduce_fixed=fixed)

    def test_plain_instance_quotient_counterexample(self):
        """The documented counterexample: merging {R(v)}/{R(w)} changes a
        µLP verdict, which is why plain-instance quotients are refused."""
        from repro.core import DCDSBuilder
        builder = DCDSBuilder(name="swap")
        builder.schema("R/1")
        builder.initial("R('a')")
        builder.service("f/1")
        builder.action("step", "R(x) ~> R(f(x))")
        builder.rule("true", "step")
        dcds = builder.build(ServiceSemantics.NONDETERMINISTIC)
        exact = explore_concrete(dcds, pool=list(POOL), depth=2,
                                 max_states=1000)
        post = isomorphism_quotient(exact, dcds.known_constants())[0]
        # The quotient system is NOT persistence-bisimilar to the exact
        # one: the keep-vs-swap transitions conflated into one self-loop.
        assert not bisimilar(post, exact, BisimMode.PERSISTENCE)

    def test_reducer_pickles_without_memos(self):
        import pickle
        dcds = random_dcds(0)
        reducer = SymmetryReducer(DetAbstractionGenerator(dcds))
        state, _ = reducer.initial_state()
        reducer.representative(state)
        clone = pickle.loads(pickle.dumps(reducer))
        assert isinstance(clone, SymmetryReducer)
        assert clone._rep_memo == {}
        assert clone.fixed == reducer.fixed


class TestInternerContract:
    def test_single_fixed_contract_enforced(self):
        """Satellite: InternEntry refuses queries for a different fixed."""
        interner = StateInterner(fixed={"a"})
        entry = interner.intern(Instance([fact("R", "a"), fact("R", "u")]))
        entry.key(interner.fixed)
        with pytest.raises(ReproError, match="fixed"):
            entry.key(frozenset())
        with pytest.raises(ReproError, match="fixed"):
            entry.canonical(frozenset({"a", "u"}))
        # The pinned set keeps answering.
        assert entry.key(interner.fixed) is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            StateInterner(mode="eager")

    def test_canonical_first_matches_collision_classes(self):
        instances = [
            Instance([fact("R", "a"), fact("R", Fresh(i % 3))])
            for i in range(6)
        ] + [
            Instance([fact("R", Fresh(i)), fact("S", Fresh(i), "a")])
            for i in range(4)
        ]
        lazy = StateInterner(fixed={"a"})
        eager = StateInterner(fixed={"a"}, mode="canonical-first")
        lazy_classes = [id(lazy.intern(instance)) for instance in instances]
        eager_classes = [id(eager.intern(instance))
                         for instance in instances]

        def partition(markers):
            groups = {}
            for index, marker in enumerate(markers):
                groups.setdefault(marker, set()).add(index)
            return frozenset(frozenset(group) for group in groups.values())

        assert partition(lazy_classes) == partition(eager_classes)
        assert len(lazy) == len(eager)

    def test_representative_is_canonical(self):
        interner = StateInterner(fixed={"a"}, mode="canonical-first")
        first = interner.representative(Instance([fact("R", "u")]))
        second = interner.representative(Instance([fact("R", "v")]))
        assert first == second == Instance([fact("R", Fresh(0))])

    def test_absent_fixed_fresh_never_minted(self):
        """Canonical names must avoid fixed Fresh values even when absent:
        renaming a movable value onto Fresh(0) would merge instances no
        bijection fixing {Fresh(0)} relates."""
        fixed = frozenset({Fresh(0)})
        movable = canonical_key(Instance([fact("R", "u")]), fixed)
        pinned = canonical_key(Instance([fact("R", Fresh(0))]), fixed)
        assert movable != pinned

    def test_canonicalizer_requires_canonical_first(self):
        with pytest.raises(ReproError, match="canonical-first"):
            StateInterner(fixed={"a"}, canonicalizer=lambda instance: None)

    def test_kernel_canonicalizer_matches_object_level_quotient(self):
        """The kernel-coded instance labeler drives the post-hoc quotient
        to the same partition as the object-level canonical_form."""
        from repro.relational.kernel import kernel_instance_canonicalizer
        dcds = random_dcds(0, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        ts = explore_concrete(dcds, pool=list(POOL) + ["c0"], depth=2,
                              max_states=2000)
        fixed = frozenset(dcds.known_constants())
        object_q, object_map = isomorphism_quotient(ts, fixed)
        kernel_q, kernel_map = isomorphism_quotient(
            ts, fixed, canonicalizer=kernel_instance_canonicalizer(dcds))
        assert len(object_q) == len(kernel_q)

        def partition(mapping):
            groups = {}
            for state, key in mapping.items():
                groups.setdefault(key, set()).add(state)
            return frozenset(frozenset(group) for group in groups.values())

        assert partition(object_map) == partition(kernel_map)


class TestWorkersOneInline:
    def test_zero_ipc_and_identical_build(self):
        """Satellite: workers=1 short-circuits the dispatch machinery."""
        dcds = random_dcds(0)
        sequential = Explorer(
            dcds.schema, max_states=MAX_STATES, max_depth=3,
            on_budget="truncate").run(
            DetAbstractionGenerator(dcds)).transition_system
        result = ParallelExplorer(
            dcds.schema, workers=1, max_states=MAX_STATES, max_depth=3,
            on_budget="truncate").run(DetAbstractionGenerator(random_dcds(0)))
        assert_bit_identical(sequential, result.transition_system)
        stats = result.stats.parallel
        assert stats["codec"] == "inline"
        assert stats["ipc_bytes_sent"] == 0
        assert stats["ipc_bytes_received"] == 0
        assert stats["states_shipped"] == 0
        assert stats["batches"] == 0
