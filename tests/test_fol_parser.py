"""FO formula text syntax."""

import pytest

from repro.errors import ParseError
from repro.fol.ast import And, Atom, Eq, Exists, Forall, Not, Or, TRUE
from repro.fol.parser import parse_formula, parse_head_atom, tokenize
from repro.relational.values import Param, ServiceCall, Var


class TestTokenizer:
    def test_symbols(self):
        kinds = [t.text for t in tokenize("( ) , . ~ & | -> != = $ ~> <->")
                 if t.kind == "symbol"]
        assert kinds == ["(", ")", ",", ".", "~", "&", "|", "->", "!=", "=",
                         "$", "~>", "<->"]

    def test_arrow_not_negative_number(self):
        tokens = tokenize("x->y")
        assert [t.text for t in tokens[:3]] == ["x", "->", "y"]

    def test_string_and_number(self):
        tokens = tokenize("'hello world' 42")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "hello world"
        assert tokens[1].kind == "number"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("R(x) ? S(y)")

    def test_primed_identifier(self):
        tokens = tokenize("x' y")
        assert tokens[0].text == "x'"


class TestParse:
    def test_atom(self):
        assert parse_formula("R(x, y)") == Atom("R", (Var("x"), Var("y")))

    def test_nullary_atom(self):
        assert parse_formula("halted()") == Atom("halted", ())

    def test_constants_parameter(self):
        parsed = parse_formula("R(a, x)", constants={"a"})
        assert parsed == Atom("R", ("a", Var("x")))

    def test_quoted_and_numeric_constants(self):
        parsed = parse_formula("R('lit', 3)")
        assert parsed == Atom("R", ("lit", 3))

    def test_action_parameter(self):
        parsed = parse_formula("R($p)")
        assert parsed == Atom("R", (Param("p"),))

    def test_negation_conjunction(self):
        parsed = parse_formula("~R(x) & S(x)")
        assert isinstance(parsed, And)
        assert isinstance(parsed.subs[0], Not)

    def test_precedence_and_over_or(self):
        parsed = parse_formula("A(x) | B(x) & C(x)")
        assert isinstance(parsed, Or)
        assert isinstance(parsed.subs[1], And)

    def test_implication_as_or(self):
        parsed = parse_formula("A(x) -> B(x)")
        assert isinstance(parsed, Or)
        assert isinstance(parsed.subs[0], Not)

    def test_implication_right_associative(self):
        # a -> (b -> c), flattened by Or.of into ~a | ~b | c.
        parsed = parse_formula("A(x) -> B(x) -> C(x)")
        assert isinstance(parsed, Or)
        assert len(parsed.subs) == 3
        assert isinstance(parsed.subs[0], Not)
        assert isinstance(parsed.subs[1], Not)
        assert isinstance(parsed.subs[2], Atom)

    def test_quantifiers(self):
        parsed = parse_formula("exists x, y. R(x, y)")
        assert isinstance(parsed, Exists)
        assert parsed.variables == (Var("x"), Var("y"))
        parsed = parse_formula("forall x. exists y. R(x, y)")
        assert isinstance(parsed, Forall)
        assert isinstance(parsed.sub, Exists)

    def test_quantifier_scope_extends_right(self):
        parsed = parse_formula("exists x. R(x) & S(x)")
        assert isinstance(parsed, Exists)
        assert isinstance(parsed.sub, And)

    def test_comparison(self):
        assert parse_formula("x = y") == Eq(Var("x"), Var("y"))
        parsed = parse_formula("x != 'a'")
        assert parsed == Not(Eq(Var("x"), "a"))

    def test_true_keyword(self):
        assert parse_formula("true") == TRUE

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_formula("R(x) S(y)")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_formula("(R(x) & S(y)")

    def test_free_variables_of_parsed(self):
        parsed = parse_formula("exists y. R(x, y) & S(z)")
        assert parsed.free_variables() == {Var("x"), Var("z")}


class TestHeadAtoms:
    def test_plain(self):
        parsed = parse_head_atom("R(x, 'c')")
        assert parsed == Atom("R", (Var("x"), "c"))

    def test_service_call(self):
        parsed = parse_head_atom("Q(f(x), g(y))")
        assert parsed.terms[0] == ServiceCall("f", (Var("x"),))
        assert parsed.terms[1] == ServiceCall("g", (Var("y"),))

    def test_call_with_param(self):
        parsed = parse_head_atom("Q(f($p))")
        assert parsed.terms[0] == ServiceCall("f", (Param("p"),))

    def test_nullary_call(self):
        parsed = parse_head_atom("Q(input())")
        assert parsed.terms[0] == ServiceCall("input", ())

    def test_trailing_rejected(self):
        with pytest.raises(ParseError):
            parse_head_atom("R(x) extra")
