"""PROP() translation (Theorem 4.4) and the propositional checker."""

import pytest

from repro.errors import VerificationError
from repro.mucalc import (
    AF, AG, EF, ModelChecker, extension, parse_mu, prop_check,
    propositionalize)
from repro.mucalc.prop import PAtom, PAnd, PMu, POr
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem, build_det_abstraction


@pytest.fixture
def ts():
    schema = DatabaseSchema.of("P/1", "Q/1")
    system = TransitionSystem(schema, "s0")
    system.add_state("s0", Instance([fact("P", "a")]))
    system.add_state("s1", Instance([fact("P", "a"), fact("Q", "b")]))
    system.add_state("s2", Instance([fact("Q", "b")]))
    system.add_edge("s0", "s1")
    system.add_edge("s1", "s2")
    system.add_edge("s2", "s0")
    return system


AGREEMENT_FORMULAS = [
    "P('a')",
    "live('a')",
    "~P('a') & <-> P('a')",
    "E x. live(x) & P(x)",
    "A x. (live(x) -> (P(x) | Q(x)))",
    "mu Z. (Q('b') | <-> Z)",
    "nu X. ((E x. live(x) & (P(x) | Q(x))) & [-] X)",
    "E x. live(x) & mu Z. (Q(x) | <-> Z)",
    "E x, y. x != y & mu Z. ((P(x) & Q(y)) | <-> Z)",
]


class TestAgreement:
    @pytest.mark.parametrize("text", AGREEMENT_FORMULAS)
    def test_prop_equals_direct(self, ts, text):
        formula = parse_mu(text)
        direct = extension(ts, formula)
        translated, labeling = propositionalize(formula, ts)
        via_prop = prop_check(ts, translated, labeling)
        assert direct == via_prop

    def test_agreement_on_abstraction(self, ex41_abstraction):
        formula = parse_mu(
            "nu X. ((A x. (live(x) & P(x) -> mu Y. (R(x) | <-> Y))) "
            "& [-] X)")
        direct = extension(ex41_abstraction, formula)
        translated, labeling = propositionalize(formula, ex41_abstraction)
        assert prop_check(ex41_abstraction, translated, labeling) == direct


class TestTranslationShape:
    def test_exists_becomes_disjunction(self, ts):
        formula = parse_mu("E x. live(x) & P(x)")
        translated, _ = propositionalize(formula, ts)
        assert isinstance(translated, POr)
        # One disjunct per domain value (a and b).
        assert len(translated.subs) == 2

    def test_fixpoint_preserved(self, ts):
        formula = parse_mu("mu Z. (Q('b') | <-> Z)")
        translated, _ = propositionalize(formula, ts)
        assert isinstance(translated, PMu)

    def test_atoms_labeled(self, ts):
        formula = parse_mu("P('a') & live('a')")
        translated, labeling = propositionalize(formula, ts)
        assert isinstance(translated, PAnd)
        assert len(labeling) == 2
        q_label = next(v for k, v in labeling.items() if k.startswith("q["))
        assert q_label == frozenset({"s0", "s1"})

    def test_open_formula_rejected(self, ts):
        from repro.mucalc.ast import QF
        from repro.fol import atom
        from repro.relational.values import Var

        with pytest.raises(VerificationError):
            propositionalize(QF(atom("P", Var("x"))), ts)

    def test_unlabeled_atom_rejected(self, ts):
        with pytest.raises(VerificationError):
            prop_check(ts, PAtom("mystery"), {})
