"""Gallery integrity: every paper example builds and behaves as documented."""

import pytest

from repro import verify
from repro.analysis import is_gr_acyclic, is_gr_plus_acyclic, \
    is_weakly_acyclic
from repro.core import ServiceSemantics
from repro.gallery import (
    audit_system, example_41, example_42, example_43, example_52,
    example_53, request_system, student_registry, theorem_45_witness)
from repro.gallery.student import (
    property_eventual_graduation_mu_lp, property_graduation_or_dropout_mu_lp,
    property_n_distinct_students, property_no_student_while_idle)
from repro.gallery.travel import (
    property_audit_failure_propagates_slim, property_no_unpriced_acceptance_slim,
    property_request_eventually_decided)
from repro.mucalc import Fragment, classify
from repro.semantics import build_det_abstraction, rcycl


class TestEveryExampleBuilds:
    @pytest.mark.parametrize("factory", [
        example_41, example_42, example_43, example_52, example_53,
        theorem_45_witness, student_registry,
        lambda: request_system(), lambda: request_system(slim=True),
        lambda: audit_system(), lambda: audit_system(slim=True),
    ])
    def test_builds_and_describes(self, factory):
        dcds = factory()
        description = dcds.describe()
        assert dcds.name in description
        assert dcds.size() > 0


class TestDocumentedVerdicts:
    def test_verdict_matrix(self, ex41, ex42, ex43_det, ex52, ex53):
        assert is_weakly_acyclic(ex41)
        assert is_weakly_acyclic(ex42)
        assert not is_weakly_acyclic(ex43_det)
        assert is_gr_acyclic(ex41)
        assert is_gr_acyclic(ex43_det)
        assert not is_gr_plus_acyclic(ex52)
        assert not is_gr_plus_acyclic(ex53)

    def test_travel_verdicts(self):
        assert not is_gr_acyclic(request_system())
        assert is_gr_plus_acyclic(request_system())
        assert is_weakly_acyclic(audit_system())


class TestStudentProperties:
    def test_graduation_muLP_holds(self, students):
        assert verify(students, property_eventual_graduation_mu_lp()).holds

    def test_graduation_or_dropout_holds(self, students):
        assert verify(students,
                      property_graduation_or_dropout_mu_lp()).holds

    def test_safety_holds(self, students):
        assert verify(students, property_no_student_while_idle()).holds

    def test_n_distinct_students_is_full_muL(self):
        formula = property_n_distinct_students(2)
        assert classify(formula) is Fragment.MU_L

    def test_n_distinct_students_on_rcycl_system(self, students_rcycl):
        """Theorem 4.5's moral: over any *finite* abstraction, Phi_n
        eventually fails even though the concrete system satisfies all of
        them — here the finite system satisfies small n but not huge n."""
        from repro.mucalc import ModelChecker

        checker = ModelChecker(students_rcycl)
        assert checker.models(property_n_distinct_students(2))
        values = len(students_rcycl.values())
        assert not checker.models(property_n_distinct_students(values + 1))


class TestTravelProperties:
    @pytest.fixture(scope="class")
    def slim_request_ts(self):
        return rcycl(request_system(slim=True), max_states=3000)

    def test_request_system_statuses_stay_legal(self, slim_request_ts):
        ts = slim_request_ts
        legal = {"readyForRequest", "readyToVerify", "readyToUpdate",
                 "requestConfirmed"}
        for state in ts.states:
            for (status,) in ts.db(state).tuples("Status"):
                assert status in legal

    def test_request_eventually_decided(self, slim_request_ts):
        from repro.mucalc import ModelChecker

        checker = ModelChecker(slim_request_ts)
        formula = property_request_eventually_decided()
        assert classify(formula) is Fragment.MU_LP
        assert checker.models(formula)

    def test_audit_property_holds(self):
        report = verify(audit_system(slim=True),
                        property_audit_failure_propagates_slim(),
                        max_states=4000)
        assert report.holds
        assert report.route == "det-abstraction"

    def test_audit_with_two_requests_blows_up(self):
        """With two logged requests CheckPrice issues four fresh calls, so
        the first abstraction level already enumerates thousands of
        equality commitments — the Section 6 exponential complexity made
        tangible. The system is still run-bounded; only the fuse trips."""
        from repro.errors import AbstractionDiverged
        from repro.semantics import build_det_abstraction

        dcds = audit_system(slim=True, requests=2)
        with pytest.raises(AbstractionDiverged):
            build_det_abstraction(dcds, max_states=2000)
