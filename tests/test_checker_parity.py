"""Checker parity: the compiled engine reproduces the seed evaluator.

The `ModelChecker` was refactored onto the compiled checking layer
(`repro.mucalc.engine`): positive normal form, predecessor-index
modalities, memoized subformula extensions, Emerson–Lei warm-started
fixpoints. These tests pin `extension()` of the compiled path against the
seed-style recursive evaluator (`compiled=False`) on every gallery DCDS ×
formula pair, over the same Table 1 transition systems the pipeline
builds — including alternating fixpoints, quantified LIVE-guarded
properties, and formulas mixing constants into LIVE.
"""

import pytest

from repro.core import ServiceSemantics
from repro.gallery import (
    audit_system, example_41, example_42, example_43, library_system,
    request_system, student_registry)
from repro.gallery.library import (
    property_loaned_books_off_shelf, property_loans_returnable,
    property_some_book_always_trackable)
from repro.gallery.student import (
    property_eventual_graduation_mu_la, property_eventual_graduation_mu_lp,
    property_graduation_or_dropout_mu_lp, property_no_student_while_idle)
from repro.gallery.travel import (
    property_no_unpriced_acceptance_slim, property_request_eventually_decided)
from repro.mucalc import (
    AF, AG, EF, EG, EU, EX, AX, ModelChecker, MNot, parse_mu)
from repro.mucalc.ast import Box, Diamond, MAnd, MOr, Mu, Nu, PredVar
from repro.semantics import build_det_abstraction, rcycl


def alternating_suite(probe):
    """Fixpoint shapes around one state property, alternation depth 1-3."""
    x, y, z = PredVar("X"), PredVar("Y"), PredVar("Z")
    infinitely_often = Nu("X", Mu("Y", MOr.of(
        MAnd.of(probe, Diamond(x)), Diamond(y))))
    return [
        probe,
        EX(probe), AX(probe),
        EF(probe), AG(probe), AF(probe), EG(probe),
        EU(probe, MNot(probe)),
        # mu inside nu: infinitely often probe.
        infinitely_often,
        # nu inside mu: eventually an invariant region.
        Mu("Y", MOr.of(Nu("X", MAnd.of(probe, Box(x))), Diamond(y))),
        # depth 3: eventually infinitely-often.
        Mu("Z", MOr.of(infinitely_often, Diamond(z))),
        # boolean dual pair (exercises PNF): ~EF ~probe == AG probe.
        MNot(EF(MNot(probe))),
    ]


def assert_parity(ts, formulas, extra_domain=()):
    compiled = ModelChecker(ts, extra_domain=extra_domain)
    reference = ModelChecker(ts, extra_domain=extra_domain, compiled=False)
    for formula in formulas:
        assert compiled.evaluate(formula) == reference.evaluate(formula), \
            f"extension mismatch on {formula!r}"


# ---------------------------------------------------------------------------
# gallery/basic.py — deterministic abstractions (Thm 4.4 route)
# ---------------------------------------------------------------------------

class TestBasicGalleryParity:
    def test_ex41_det_abstraction(self, ex41_abstraction):
        formulas = alternating_suite(parse_mu("R('a')")) + [
            parse_mu("E x. live(x) & P(x)"),
            parse_mu("A x. (live(x) -> (P(x) | R(x) | (E y. Q(x, y))))"),
            parse_mu("mu Z. ((E x, y. live(x) & live(y) & Q(x, y)) "
                     "| <-> Z)"),
            # LIVE mixing a variable with a constant.
            parse_mu("E x. live(x) & live('a') & Q('a', x)"),
            parse_mu("nu X. ((A x. (live(x) & P(x) -> "
                     "mu Y. (R(x) | <-> Y))) & [-] X)"),
        ]
        assert_parity(ex41_abstraction, formulas)

    def test_ex42_det_abstraction(self, ex42_abstraction):
        formulas = alternating_suite(parse_mu("Q('a', 'a')")) + [
            parse_mu("E x. live(x) & Q(x, x)"),
            parse_mu("nu X. (Q('a', 'a') & (<-> X | [-] false))"),
        ]
        assert_parity(ex42_abstraction, formulas)

    def test_ex43_rcycl(self, ex43_rcycl):
        formulas = alternating_suite(parse_mu("Q('a')")) + [
            parse_mu("E x. live(x) & Q(x)"),
            parse_mu("A x. (live(x) -> (Q(x) | R(x)))"),
            parse_mu("live('a')"),
        ]
        assert_parity(ex43_rcycl, formulas)


# ---------------------------------------------------------------------------
# gallery/student.py — Examples 3.1-3.3 properties over RCYCL
# ---------------------------------------------------------------------------

class TestStudentGalleryParity:
    def test_paper_properties(self, students_rcycl):
        formulas = [
            property_eventual_graduation_mu_la(),
            property_eventual_graduation_mu_lp(),
            property_graduation_or_dropout_mu_lp(),
            property_no_student_while_idle(),
        ]
        assert_parity(students_rcycl, formulas)

    def test_alternating_and_quantified(self, students_rcycl):
        formulas = alternating_suite(
            parse_mu("E x. live(x) & Stud(x)")) + [
            parse_mu("A x, y. (live(x, y) -> (Grad(x, y) | ~Grad(x, y)))"),
            parse_mu("E x. live(x) & Stud(x) & "
                     "(mu Y. ((E y. live(y) & Grad(x, y)) "
                     "| <-> (live(x) & Y)))"),
        ]
        assert_parity(students_rcycl, formulas)


# ---------------------------------------------------------------------------
# gallery/library.py and gallery/travel.py
# ---------------------------------------------------------------------------

class TestLibraryTravelParity:
    def test_library_rcycl(self):
        ts = rcycl(library_system(books=1, members=1))
        formulas = [
            property_loaned_books_off_shelf(),
            property_loans_returnable(),
            property_some_book_always_trackable(),
        ] + alternating_suite(parse_mu("E b, m. live(b, m) & Loaned(b, m)"))
        assert_parity(ts, formulas)

    def test_request_system_rcycl(self):
        ts = rcycl(request_system(slim=True))
        formulas = [
            property_request_eventually_decided(),
            property_no_unpriced_acceptance_slim(),
        ] + alternating_suite(parse_mu("Status('decided')"))
        assert_parity(ts, formulas)

    def test_audit_system_det_abstraction(self):
        # property_audit_failure_propagates_slim() is parity-checked in
        # benchmarks/bench_model_checking.py (it is the slowest reference
        # evaluation in the repo); here cheaper quantified shapes cover the
        # same connectives.
        ts = build_det_abstraction(audit_system(slim=True))
        formulas = alternating_suite(parse_mu("Status('audited')")) + [
            parse_mu("E i. live(i) & (E n. live(n) & "
                     "Travel(i, n, 'passedFalse'))"),
            parse_mu("A i. (live(i) -> mu Y. (Status('audited') | <-> Y))"),
        ]
        assert_parity(ts, formulas)


# ---------------------------------------------------------------------------
# Divergent gallery members — parity over truncated constructions
# ---------------------------------------------------------------------------

class TestDivergentGalleryParity:
    def test_ex52_partial_pruning(self, ex52):
        from repro.semantics.rcycl import rcycl_partial

        ts = rcycl_partial(ex52, max_states=40).transition_system
        assert_parity(ts, alternating_suite(parse_mu("E x. live(x) & Q(x)")))

    def test_ex53_partial_pruning(self, ex53):
        from repro.semantics.rcycl import rcycl_partial

        ts = rcycl_partial(ex53, max_states=40).transition_system
        assert_parity(ts, alternating_suite(parse_mu("E x. live(x)")))

    def test_theorem_45_witness_truncated(self):
        from repro.gallery import theorem_45_witness

        ts = build_det_abstraction(theorem_45_witness(), max_depth=3)
        assert_parity(ts, alternating_suite(parse_mu("E x. live(x) & R(x)")))


# ---------------------------------------------------------------------------
# Valuations, predicate valuations, extra domains
# ---------------------------------------------------------------------------

class TestParameterParity:
    def test_open_formula_with_valuation(self, ex41_abstraction):
        from repro.fol import atom
        from repro.relational.values import Var

        compiled = ModelChecker(ex41_abstraction)
        reference = ModelChecker(ex41_abstraction, compiled=False)
        formula = parse_mu("mu Z. (P(x) | <-> Z)")
        for value in sorted(ex41_abstraction.values(), key=repr)[:4]:
            valuation = {Var("x"): value}
            assert compiled.evaluate(formula, valuation) == \
                reference.evaluate(formula, valuation)

    def test_free_predicate_valuation(self, ex41_abstraction):
        formula = MOr.of(parse_mu("R('a')"), Diamond(PredVar("W")))
        some_states = frozenset(list(ex41_abstraction.states)[:3])
        compiled = ModelChecker(ex41_abstraction)
        reference = ModelChecker(ex41_abstraction, compiled=False)
        assert compiled.evaluate(formula, predicates={"W": some_states}) \
            == reference.evaluate(formula, predicates={"W": some_states})

    def test_extra_domain_constants(self, ex43_rcycl):
        # Dead extra-domain values: the guarded-quantifier restriction in
        # the compiled path must not change extensions.
        extra = ("ghost-1", "ghost-2")
        formulas = [
            parse_mu("E x. live(x) & Q(x)"),
            parse_mu("A x. (live(x) -> (Q(x) | R(x)))"),
            parse_mu("E x. Q(x)"),
            parse_mu("A x. (Q(x) | ~Q(x))"),
        ]
        assert_parity(ex43_rcycl, formulas, extra_domain=extra)

    def test_repeated_evaluation_is_stable(self, ex41_abstraction):
        # The persistent memo/warm-start state must not leak between calls.
        checker = ModelChecker(ex41_abstraction)
        formula = alternating_suite(parse_mu("R('a')"))[8]
        first = checker.evaluate(formula)
        second = checker.evaluate(formula)
        assert first == second
        reference = ModelChecker(ex41_abstraction, compiled=False)
        assert first == reference.evaluate(formula)
