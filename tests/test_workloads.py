"""Workload generators: shape guarantees and determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import is_gr_acyclic, is_weakly_acyclic
from repro.core import ServiceSemantics
from repro.semantics import build_det_abstraction
from repro.semantics.commitments import count_commitments
from repro.workloads import (
    chain_dcds, commitment_blowup_dcds, random_dcds, warehouse_dcds)


class TestRandomDCDS:
    def test_deterministic_in_seed(self):
        first = random_dcds(seed=42)
        second = random_dcds(seed=42)
        assert first.describe() == second.describe()

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_structurally_equal_across_shapes(self, seed):
        """Regression for the differential harness's reproducibility
        contract: two same-seed builds must agree structurally (schema,
        initial instance, services, actions, effects, rules, semantics)
        for every shape and semantics."""
        for shape in ("weakly-acyclic", "gr-acyclic", "free"):
            for semantics in (ServiceSemantics.DETERMINISTIC,
                              ServiceSemantics.NONDETERMINISTIC):
                first = random_dcds(seed, shape=shape, semantics=semantics)
                second = random_dcds(seed, shape=shape, semantics=semantics)
                assert first.spec_signature() == second.spec_signature()

    def test_seeded_rng_isolated_from_module_random(self):
        """Every draw must come from the private Random(seed) instance:
        perturbing the module-level random state between two same-seed
        calls must not change the result."""
        import random as module_random

        state = module_random.getstate()
        try:
            module_random.seed(1)
            first = random_dcds(seed=7, shape="free")
            module_random.seed(999)
            second = random_dcds(seed=7, shape="free")
        finally:
            module_random.setstate(state)
        assert first.spec_signature() == second.spec_signature()

    def test_different_seeds_differ(self):
        texts = {random_dcds(seed=s).describe() for s in range(8)}
        assert len(texts) > 1

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            random_dcds(seed=0, shape="mystery")

    @given(st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_weakly_acyclic_shape_guarantee(self, seed):
        dcds = random_dcds(seed, n_relations=4, n_actions=2,
                           effects_per_action=3, shape="weakly-acyclic")
        assert is_weakly_acyclic(dcds)

    @given(st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_gr_acyclic_shape_guarantee(self, seed):
        dcds = random_dcds(seed, n_relations=4, n_actions=2,
                           effects_per_action=3, shape="gr-acyclic",
                           semantics=ServiceSemantics.NONDETERMINISTIC)
        assert is_gr_acyclic(dcds)

    @given(st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_weakly_acyclic_instances_have_finite_abstractions(self, seed):
        dcds = random_dcds(seed, n_relations=3, n_actions=1,
                           effects_per_action=2, shape="weakly-acyclic")
        ts = build_det_abstraction(dcds, max_states=20000)
        assert len(ts) >= 1


class TestFamilies:
    def test_blowup_first_level(self):
        ts = build_det_abstraction(commitment_blowup_dcds(2),
                                   max_states=100000)
        assert len(ts.depth_levels()[1]) == count_commitments(2, 1)

    def test_chain_is_weakly_acyclic(self):
        assert is_weakly_acyclic(chain_dcds(4))

    def test_chain_rank_grows(self):
        from repro.analysis import dependency_graph

        ranks = dependency_graph(chain_dcds(4)).ranks()
        assert ranks[("L4", 0)] == 4

    def test_warehouse_state_space_is_cells_to_tokens(self):
        # k+1 independent tokens over 2k+3 cells: (2k+3)^(k+1) states.
        ts = build_det_abstraction(warehouse_dcds(1), max_states=100000)
        assert len(ts) == 5 ** 2

    def test_warehouse_payload_rides_every_state(self):
        payload = 17
        dcds = warehouse_dcds(1, payload=payload)
        assert is_weakly_acyclic(dcds)
        ts = build_det_abstraction(dcds, max_states=100000)
        for state in ts.states:
            assert len(ts.db(state).tuples("Cat")) == payload
