"""Property-based tests of the compact wire codec (engine/wire.py).

``random_dcds`` instances round-trip through the codec between *distinct*
kernels (emulating the coordinator/worker process split in-process), the
token protocol replays identically on both ends, and parallel builds over
the codec stay bit-identical to sequential ones under both ``fork`` and
``spawn`` at workers 1/2/4 — with the IPC counters recorded in the
exploration stats. ``workers=1`` short-circuits to the in-process apply
loop (``codec="inline"``, zero IPC — PR 5), so codec traffic is exercised
at ``workers>=2`` and spawn coverage runs at ``workers=2``.
"""

from __future__ import annotations

import os
import pickle
from collections import Counter

import multiprocessing
import pytest

# The codec rides the kernel; with the kernel switched off the explorer
# falls back to the pickle transport (covered by its own test below, which
# sets the switch itself).
pytestmark = pytest.mark.skipif(
    bool(os.environ.get("REPRO_NO_KERNEL")),
    reason="wire codec requires the relational kernel")

from repro.core import ServiceSemantics
from repro.core.execution import clear_subproblem_caches
from repro.engine import (
    DetAbstractionGenerator, Explorer, ParallelExplorer,
    PoolNondetGenerator)
from repro.engine.faults import corrupt_payload
from repro.engine.wire import (
    FRAME_OVERHEAD, WireCodec, WireSession, _dumps, _loads, make_codec)
from repro.errors import WireIntegrityError
from repro.relational.kernel import RelationalKernel
from repro.relational.values import Fresh
from repro.workloads import commitment_blowup_dcds, random_dcds

POOL = ("c0", "c1", Fresh(90))
MAX_STATES = 2000
MAX_DEPTH = 3


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_subproblem_caches()
    yield
    clear_subproblem_caches()


def generator_for(dcds):
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        return DetAbstractionGenerator(dcds)
    return PoolNondetGenerator(dcds, list(POOL))


def explored_states(dcds):
    generator = generator_for(dcds)
    ts = Explorer(dcds.schema, max_states=MAX_STATES, max_depth=MAX_DEPTH,
                  on_budget="truncate").run(generator).transition_system
    return generator, ts


def remote_kernel(dcds, snapshot):
    """A second kernel as a worker process would build it (spawn path):
    fresh construction from a pickled specification + snapshot replay."""
    detached = pickle.loads(pickle.dumps(dcds))
    assert getattr(detached, "_relational_kernel") is None
    kernel = RelationalKernel(detached)
    kernel.table.replay(snapshot)
    # Attach directly (bypassing the structural-equality registry, which
    # would hand back the coordinator's kernel) so worker-side expansion
    # really runs on the second kernel.
    object.__setattr__(detached, "_relational_kernel", kernel)
    return kernel


class TestRoundTrip:
    """Coordinator -> worker -> coordinator through two distinct kernels."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("shape", ["weakly-acyclic", "free"])
    @pytest.mark.parametrize(
        "semantics",
        [ServiceSemantics.DETERMINISTIC, ServiceSemantics.NONDETERMINISTIC],
        ids=["det", "nondet"])
    def test_random_dcds_round_trip(self, seed, shape, semantics):
        dcds = random_dcds(seed, shape=shape, semantics=semantics)
        generator, ts = explored_states(dcds)
        states = sorted(ts.states, key=repr)
        codec = make_codec(generator)
        assert codec is not None
        snapshot = codec.snapshot()

        worker = WireSession(WireCodec(
            remote_kernel(dcds, snapshot), len(snapshot)))
        coordinator = WireSession(codec)

        batch = states[:32]
        payload, parents = coordinator.encode_dispatch(batch)
        decoded, worker_parents = worker.decode_dispatch(payload)
        assert decoded == batch
        assert [hash(state) for state in decoded] \
            == [hash(state) for state in batch]

        # Expand worker-side, ship deltas back, compare successor lists.
        worker_generator = generator_for(worker.codec.kernel.dcds)
        results = [list(worker_generator.successors(state))
                   for state in decoded]
        reply = worker.encode_results(worker_parents, results)
        received = coordinator.decode_results(reply, parents)
        expected = [list(generator.successors(state)) for state in batch]
        assert received == expected

        # Token protocol: re-dispatching the same states is pure tokens —
        # a second dispatch payload must shrink.
        second_payload, _ = coordinator.encode_dispatch(batch)
        assert len(second_payload) < len(payload)
        redecoded, _ = worker.decode_dispatch(second_payload)
        assert redecoded == batch

    def test_delta_indexes_survive_divergent_code_orders(self):
        """Result deltas reference parent facts by index; the agreed list
        order must come from the messages, never from local code order —
        which this test forces to *disagree* between the two kernels by
        pre-interning the exploration's values into the remote table in
        reversed order. The workload accumulates several same-relation
        facts over fresh values, so local sort orders genuinely differ."""
        from repro.utils import sorted_values

        dcds = random_dcds(1, shape="free", n_relations=2,
                           effects_per_action=3)
        generator = generator_for(dcds)
        # Snapshot BEFORE exploring — exactly when the explorer creates its
        # worker links — so exploration-minted values are post-snapshot.
        codec = make_codec(generator)
        snapshot = codec.snapshot()
        ts = Explorer(dcds.schema, max_states=MAX_STATES,
                      max_depth=MAX_DEPTH,
                      on_budget="truncate").run(generator).transition_system
        kernel = remote_kernel(dcds, snapshot)
        # Divergence: every term the coordinator interned after the
        # snapshot gets a remote code in the opposite relative order.
        extra = list(codec.kernel.table._terms[len(snapshot):])
        assert extra, "workload must mint post-snapshot terms"
        for term in reversed(sorted_values(extra)):
            kernel.table.code(term)
        worker = WireSession(WireCodec(kernel, len(snapshot)))
        coordinator = WireSession(codec)

        states = sorted(ts.states, key=repr)
        batch = states[:24]
        payload, parents = coordinator.encode_dispatch(batch)
        decoded, worker_parents = worker.decode_dispatch(payload)
        assert decoded == batch
        worker_generator = generator_for(kernel.dcds)
        results = [list(worker_generator.successors(state))
                   for state in decoded]
        reply = worker.encode_results(worker_parents, results)
        received = coordinator.decode_results(reply, parents)
        expected = [list(generator.successors(state)) for state in batch]
        assert received == expected

        # Second round: now every successor is a token on the worker and
        # many parents are tokens on the coordinator — orders still agree.
        batch2 = [successor for entry in expected for successor, _, _ in
                  entry][:24]
        payload2, parents2 = coordinator.encode_dispatch(batch2)
        decoded2, worker_parents2 = worker.decode_dispatch(payload2)
        assert decoded2 == batch2
        results2 = [list(worker_generator.successors(state))
                    for state in decoded2]
        reply2 = worker.encode_results(worker_parents2, results2)
        received2 = coordinator.decode_results(reply2, parents2)
        assert received2 == [list(generator.successors(state))
                             for state in batch2]

    def test_detstate_hash_stability_after_round_trip(self):
        dcds = commitment_blowup_dcds(3)
        generator, ts = explored_states(dcds)
        codec = make_codec(generator)
        snapshot = codec.snapshot()
        worker = WireSession(WireCodec(
            remote_kernel(dcds, snapshot), len(snapshot)))
        coordinator = WireSession(codec)
        states = sorted(ts.states, key=repr)
        payload, _ = coordinator.encode_dispatch(states)
        decoded, _ = worker.decode_dispatch(payload)
        # Same process, so equal states must have equal (cached) hashes.
        assert {hash(s) for s in states} == {hash(s) for s in decoded}


class TestFraming:
    """The CRC32 frame around every wire/checkpoint payload."""

    def test_round_trip(self):
        message = {"batch": [1, 2, 3], "labels": ("a", None)}
        assert _loads(_dumps(message)) == message

    def test_frame_layout(self):
        payload = _dumps([1, 2, 3])
        assert payload[:3] == b"RW1"
        assert len(payload) >= FRAME_OVERHEAD

    def test_short_frame_rejected(self):
        with pytest.raises(WireIntegrityError, match="truncated"):
            _loads(b"RW")

    def test_bad_magic_rejected(self):
        payload = b"XX9" + _dumps([1])[3:]
        with pytest.raises(WireIntegrityError, match="bad magic"):
            _loads(payload)

    def test_truncated_body_rejected(self):
        payload = _dumps(list(range(100)))
        with pytest.raises(WireIntegrityError, match="truncated"):
            _loads(payload[:-5])

    def test_crc_mismatch_names_link(self):
        payload = bytearray(_dumps(list(range(100))))
        payload[-1] ^= 0xFF
        with pytest.raises(WireIntegrityError, match="CRC32") as excinfo:
            _loads(bytes(payload), link=3)
        assert excinfo.value.link == 3

    def test_corrupt_payload_is_caught(self):
        # The fault injector's corruption always lands past the header,
        # so the checksum (not a zlib traceback) reports it.
        payload = _dumps({"states": list(range(64))})
        for seed in range(8):
            mangled = corrupt_payload(payload, seed=seed)
            assert mangled != payload
            with pytest.raises(WireIntegrityError):
                _loads(mangled, link=1)

    def test_corruption_is_deterministic(self):
        payload = _dumps(list(range(32)))
        assert corrupt_payload(payload, seed=5) \
            == corrupt_payload(payload, seed=5)
        assert corrupt_payload(payload, seed=5) \
            != corrupt_payload(payload, seed=6)


def edge_multiset(ts):
    return Counter(ts.edges())


def assert_bit_identical(sequential, parallel):
    assert sequential.states == parallel.states
    assert edge_multiset(sequential) == edge_multiset(parallel)
    assert {s: sequential.db(s) for s in sequential.states} \
        == {s: parallel.db(s) for s in parallel.states}
    assert sequential.truncated_states == parallel.truncated_states


START_METHODS = [
    method for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()]


class TestParallelCodecDifferential:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_bit_identical_builds(self, seed, workers, start_method):
        if start_method == "spawn" and workers != 2:
            pytest.skip("spawn startup cost; covered at workers=2")
        dcds = random_dcds(seed)
        sequential = Explorer(
            dcds.schema, max_states=MAX_STATES, max_depth=MAX_DEPTH,
            on_budget="truncate").run(
            DetAbstractionGenerator(dcds)).transition_system
        clear_subproblem_caches()
        fresh = random_dcds(seed)
        result = ParallelExplorer(
            fresh.schema, max_states=MAX_STATES, max_depth=MAX_DEPTH,
            on_budget="truncate", workers=workers, batch_size=8,
            start_method=start_method).run(DetAbstractionGenerator(fresh))
        assert_bit_identical(sequential, result.transition_system)
        stats = result.stats.parallel
        if workers == 1:
            # One worker short-circuits to the in-process sequential apply
            # loop: no pipes, no codec, zero IPC (PR 5 regression gate).
            assert stats["codec"] == "inline"
            assert stats["ipc_bytes_sent"] == 0
            assert stats["ipc_bytes_received"] == 0
            assert stats["states_shipped"] == 0
            return
        assert stats["codec"] == "wire"
        if stats["states_shipped"]:
            assert stats["ipc_bytes_sent"] > 0
            assert stats["ipc_bytes_received"] > 0

    def test_ipc_stats_recorded(self):
        dcds = commitment_blowup_dcds(4)
        result = ParallelExplorer(
            dcds.schema, max_states=100000, workers=2,
            batch_size=16).run(DetAbstractionGenerator(dcds))
        stats = result.stats.parallel
        for key in ("codec", "states_shipped", "ipc_bytes_sent",
                    "ipc_bytes_received", "coordinator_decode_sec",
                    "coordinator_apply_sec"):
            assert key in stats
        assert stats["codec"] == "wire"
        assert stats["states_shipped"] > 0
        # Stats surface through the transition system's exploration stats
        # (and from there through abstraction_stats in verify()).
        assert result.transition_system.exploration_stats[
            "parallel"]["ipc_bytes_sent"] == stats["ipc_bytes_sent"]

    def test_wire_payloads_beat_pickled_states(self):
        """The coded traffic is several times smaller than pickling the
        same object graphs (the PR 3 transport)."""
        dcds = commitment_blowup_dcds(5)
        result = ParallelExplorer(
            dcds.schema, max_states=100000, workers=2,
            batch_size=32).run(DetAbstractionGenerator(dcds))
        ts = result.transition_system
        stats = result.stats.parallel
        wire_bytes = stats["ipc_bytes_sent"] + stats["ipc_bytes_received"]
        legacy_dispatch = len(pickle.dumps(sorted(ts.states, key=repr), 5))
        assert wire_bytes * 2 < legacy_dispatch

    def test_legacy_pickle_path_for_kernelless_generators(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        dcds = commitment_blowup_dcds(3)
        sequential = Explorer(dcds.schema, max_states=100000).run(
            DetAbstractionGenerator(dcds)).transition_system
        fresh = commitment_blowup_dcds(3)
        result = ParallelExplorer(
            fresh.schema, max_states=100000, workers=2,
            batch_size=8).run(DetAbstractionGenerator(fresh))
        assert result.stats.parallel["codec"] == "pickle"
        assert_bit_identical(sequential, result.transition_system)
