"""Active-domain FO evaluation, validated against a brute-force oracle."""

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormulaError
from repro.fol.ast import (
    And, Atom, Eq, Exists, Forall, Not, Or, TRUE, FALSE, atom, exists,
    forall, neq)
from repro.fol.evaluation import answers, evaluation_domain, holds
from repro.relational import Instance, fact
from repro.relational.values import Param, Var

X, Y, Z = Var("x"), Var("y"), Var("z")


@pytest.fixture
def db():
    return Instance([
        fact("R", "a", "b"), fact("R", "b", "c"), fact("R", "a", "a"),
        fact("S", "a"), fact("S", "c"),
    ])


class TestHolds:
    def test_atom(self, db):
        assert holds(atom("S", "a"), db)
        assert not holds(atom("S", "b"), db)

    def test_atom_with_valuation(self, db):
        assert holds(atom("R", X, Y), db, {X: "a", Y: "b"})
        assert not holds(atom("R", X, Y), db, {X: "b", Y: "a"})

    def test_unbound_variable_rejected(self, db):
        with pytest.raises(FormulaError):
            holds(atom("R", X, Y), db, {X: "a"})

    def test_param_rejected(self, db):
        with pytest.raises(FormulaError):
            holds(atom("S", Param("p")), db)

    def test_connectives(self, db):
        assert holds(atom("S", "a") & ~atom("S", "b"), db)
        assert holds(atom("S", "zzz") | atom("S", "c"), db)
        assert holds(atom("S", "b").implies(atom("S", "q")), db)

    def test_equality(self, db):
        assert holds(Eq("a", "a"), db)
        assert not holds(Eq("a", "b"), db)
        assert holds(neq("a", "b"), db)

    def test_exists(self, db):
        assert holds(exists("x", atom("S", X) & atom("R", X, X)), db)
        assert not holds(exists("x", atom("S", X) & atom("R", X, "c")), db)

    def test_forall(self, db):
        # Every S-element has an outgoing R edge? c has none.
        formula = forall("x", atom("S", X).implies(
            exists("y", atom("R", X, Y))))
        assert not holds(formula, db)
        formula2 = forall("x", atom("S", X).implies(
            Or.of(exists("y", atom("R", X, Y)), atom("R", "b", X))))
        assert holds(formula2, db)

    def test_quantifier_shadowing(self, db):
        # Outer binding of x must be shadowed by the quantifier.
        formula = exists("x", atom("S", X))
        assert holds(formula, db, {X: "nonexistent"})

    def test_true_false(self, db):
        assert holds(TRUE, db)
        assert not holds(FALSE, db)


class TestAnswers:
    def test_atom_answers(self, db):
        result = answers(atom("R", X, Y), db)
        assert {(r[X], r[Y]) for r in result} == \
            {("a", "b"), ("b", "c"), ("a", "a")}

    def test_join(self, db):
        formula = And.of(atom("R", X, Y), atom("S", Y))
        result = answers(formula, db)
        assert {(r[X], r[Y]) for r in result} == {("b", "c"), ("a", "a")}

    def test_negation_active_domain(self, db):
        formula = And.of(atom("S", X), Not(atom("R", X, X)))
        result = answers(formula, db)
        assert {r[X] for r in result} == {"c"}

    def test_pure_negation_ranges_over_domain(self, db):
        result = answers(Not(atom("S", X)), db)
        assert {r[X] for r in result} == {"b"}

    def test_disjunction_pads_missing_variables(self, db):
        formula = Or.of(atom("S", X), atom("S", Y))
        result = answers(formula, db)
        domain = {"a", "b", "c"}
        expected = {(x, y) for x, y in product(domain, domain)
                    if x in {"a", "c"} or y in {"a", "c"}}
        assert {(r[X], r[Y]) for r in result} == expected

    def test_equality_binding(self, db):
        formula = And.of(atom("S", X), Eq(X, Y))
        result = answers(formula, db)
        assert {(r[X], r[Y]) for r in result} == {("a", "a"), ("c", "c")}

    def test_constants_extend_domain(self, db):
        formula = And.of(Eq(X, "zzz"))
        result = answers(formula, db)
        assert {r[X] for r in result} == {"zzz"}

    def test_deterministic_order(self, db):
        first = answers(atom("R", X, Y), db)
        second = answers(atom("R", X, Y), db)
        assert first == second


# -- brute-force differential oracle -------------------------------------------

def brute_force_holds(formula, instance, valuation, domain):
    """Naive semantics by full domain enumeration."""
    from repro.fol.ast import (
        And as FAnd, Atom as FAtom, Eq as FEq, Exists as FExists,
        FalseF, Forall as FForall, Not as FNot, Or as FOr, TrueF)

    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, FAtom):
        resolved = tuple(valuation.get(t, t) for t in formula.terms)
        return resolved in instance.tuples(formula.relation)
    if isinstance(formula, FEq):
        return valuation.get(formula.left, formula.left) == \
            valuation.get(formula.right, formula.right)
    if isinstance(formula, FNot):
        return not brute_force_holds(formula.sub, instance, valuation, domain)
    if isinstance(formula, FAnd):
        return all(brute_force_holds(sub, instance, valuation, domain)
                   for sub in formula.subs)
    if isinstance(formula, FOr):
        return any(brute_force_holds(sub, instance, valuation, domain)
                   for sub in formula.subs)
    if isinstance(formula, FExists):
        variables = formula.variables
        for combo in product(sorted(domain, key=repr),
                             repeat=len(variables)):
            extended = dict(valuation)
            extended.update(zip(variables, combo))
            if brute_force_holds(formula.sub, instance, extended, domain):
                return True
        return False
    if isinstance(formula, FForall):
        negated = FExists(formula.variables, FNot(formula.sub))
        return not brute_force_holds(negated, instance, valuation, domain)
    raise AssertionError(formula)


# Random formula generator over schema R/2, S/1 and variables x, y.
def formulas(depth):
    leaf = st.one_of(
        st.tuples(st.sampled_from(["x", "y"]),
                  st.sampled_from(["x", "y"])).map(
            lambda p: Atom("R", (Var(p[0]), Var(p[1])))),
        st.sampled_from(["x", "y"]).map(lambda n: Atom("S", (Var(n),))),
        st.tuples(st.sampled_from(["x", "y"]),
                  st.sampled_from(["a", "b"])).map(
            lambda p: Eq(Var(p[0]), p[1])),
    )
    if depth == 0:
        return leaf
    sub = formulas(depth - 1)
    return st.one_of(
        leaf,
        sub.map(Not),
        st.tuples(sub, sub).map(lambda p: And.of(*p)),
        st.tuples(sub, sub).map(lambda p: Or.of(*p)),
        st.tuples(st.sampled_from(["x", "y"]), sub).map(
            lambda p: Exists((Var(p[0]),), p[1])),
        st.tuples(st.sampled_from(["x", "y"]), sub).map(
            lambda p: Forall((Var(p[0]),), p[1])),
    )


instances = st.lists(
    st.one_of(
        st.tuples(st.just("R"), st.tuples(st.sampled_from("abc"),
                                          st.sampled_from("abc"))),
        st.tuples(st.just("S"), st.tuples(st.sampled_from("abc"))),
    ),
    min_size=0, max_size=5,
).map(lambda items: Instance([fact(n, *t) for n, t in items]))


@given(instances, formulas(2),
       st.sampled_from("abc"), st.sampled_from("abc"))
@settings(max_examples=120, deadline=None)
def test_holds_matches_brute_force(instance, formula, vx, vy):
    valuation = {Var("x"): vx, Var("y"): vy}
    domain = evaluation_domain(instance, formula, valuation.values())
    expected = brute_force_holds(formula, instance, valuation, domain)
    assert holds(formula, instance, valuation, domain) == expected


def test_vacuous_exists_over_empty_domain():
    # E x. (A x. S(x)) over the empty instance: the inner forall is
    # vacuously true, but the outer existential still needs a witness value
    # for x — over an empty domain it is false (hypothesis-discovered).
    empty = Instance([])
    formula = Exists((X,), Forall((X,), atom("S", X)))
    assert not holds(formula, empty)
    assert answers(formula, empty) == []
    assert holds(Forall((X,), atom("S", X)), empty)


@given(instances, formulas(2))
@settings(max_examples=120, deadline=None)
def test_answers_match_brute_force(instance, formula):
    domain = evaluation_domain(instance, formula)
    free = sorted(formula.free_variables(), key=lambda v: v.name)
    expected = set()
    for combo in product(sorted(domain, key=repr), repeat=len(free)):
        valuation = dict(zip(free, combo))
        if brute_force_holds(formula, instance, valuation, domain):
            expected.add(combo)
    actual = {tuple(binding[v] for v in free)
              for binding in answers(formula, instance, domain=domain)}
    assert actual == expected
