"""FO AST structural operations."""

import pytest

from repro.errors import FormulaError
from repro.fol.ast import (
    And, Atom, Eq, Exists, FALSE, Forall, Not, Or, TRUE, atom, exists,
    forall, is_positive_existential, neq)
from repro.relational.values import Param, Var

X, Y = Var("x"), Var("y")


class TestConstructors:
    def test_and_flattens_and_absorbs_true(self):
        formula = And.of(atom("R", X), TRUE, And.of(atom("S", X), TRUE))
        assert isinstance(formula, And)
        assert len(formula.subs) == 2

    def test_and_of_nothing_is_true(self):
        assert And.of() == TRUE
        assert And.of(TRUE, TRUE) == TRUE

    def test_or_flattens_and_absorbs_false(self):
        formula = Or.of(atom("R", X), FALSE, Or.of(atom("S", X)))
        assert isinstance(formula, Or)
        assert len(formula.subs) == 2

    def test_or_of_nothing_is_false(self):
        assert Or.of() == FALSE

    def test_single_element_unwrapped(self):
        assert And.of(atom("R", X)) == atom("R", X)
        assert Or.of(atom("R", X)) == atom("R", X)

    def test_operator_sugar(self):
        formula = atom("R", X) & ~atom("S", X) | atom("T", X)
        assert isinstance(formula, Or)

    def test_neq(self):
        assert neq(X, Y) == Not(Eq(X, Y))

    def test_duplicate_quantified_variable_rejected(self):
        with pytest.raises(FormulaError):
            Exists((X, X), atom("R", X))


class TestFreeVariables:
    def test_atom(self):
        assert atom("R", X, "c", Y).free_variables() == {X, Y}

    def test_quantifier_binds(self):
        formula = exists("x", atom("R", X, Y))
        assert formula.free_variables() == {Y}

    def test_nested_quantifiers(self):
        formula = forall("y", exists("x", atom("R", X, Y)))
        assert formula.free_variables() == frozenset()

    def test_eq_variables(self):
        assert Eq(X, "c").free_variables() == {X}


class TestSubstitution:
    def test_atom_substitution(self):
        result = atom("R", X, Y).substitute({X: "a"})
        assert result == atom("R", "a", Y)

    def test_quantifier_shadowing(self):
        formula = exists("x", atom("R", X, Y))
        result = formula.substitute({X: "a", Y: "b"})
        assert result == exists("x", atom("R", X, "b"))

    def test_param_substitution(self):
        formula = atom("R", Param("p"))
        assert formula.substitute({Param("p"): "v"}) == atom("R", "v")


class TestMetadata:
    def test_constants(self):
        formula = And.of(atom("R", X, "c"), Eq(Y, 3))
        assert formula.constants() == {"c", 3}

    def test_parameters(self):
        formula = And.of(atom("R", Param("p")), atom("S", X))
        assert formula.parameters() == {Param("p")}

    def test_relations(self):
        formula = exists("x", atom("R", X) & ~atom("S", X))
        assert formula.relations() == {"R", "S"}

    def test_atoms_under_negation_listed(self):
        formula = Not(atom("R", X))
        assert [a.relation for a in formula.atoms()] == ["R"]


class TestPositiveExistential:
    def test_cq_is_positive(self):
        assert is_positive_existential(
            exists("x", atom("R", X) & Eq(X, "c")))

    def test_ucq_is_positive(self):
        assert is_positive_existential(atom("R", X) | atom("S", X))

    def test_negation_is_not(self):
        assert not is_positive_existential(~atom("R", X))

    def test_forall_is_not(self):
        assert not is_positive_existential(forall("x", atom("R", X)))
