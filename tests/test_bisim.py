"""History- and persistence-preserving bisimulation checkers."""

import pytest

from repro.bisim import BisimMode, bisimilar, bounded_bisimilar
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Fresh
from repro.semantics import (
    TransitionSystem, build_det_abstraction, explore_concrete,
    isomorphism_quotient, rcycl)


def simple_ts(name, states, edges, initial):
    schema = DatabaseSchema.of("R/1", "S/1")
    ts = TransitionSystem(schema, initial, name=name)
    for state, facts in states.items():
        ts.add_state(state, Instance(facts))
    for source, target in edges:
        ts.add_edge(source, target)
    return ts


class TestBasicCases:
    def test_identical_systems(self):
        ts = simple_ts("a", {"s0": [fact("R", "v")]}, [("s0", "s0")], "s0")
        assert bisimilar(ts, ts, BisimMode.HISTORY)
        assert bisimilar(ts, ts, BisimMode.PERSISTENCE)

    def test_renamed_values(self):
        first = simple_ts("a", {"s0": [fact("R", "v")]}, [("s0", "s0")], "s0")
        second = simple_ts("b", {"t0": [fact("R", "w")]}, [("t0", "t0")],
                           "t0")
        assert bisimilar(first, second, BisimMode.HISTORY)

    def test_different_databases(self):
        first = simple_ts("a", {"s0": [fact("R", "v")]}, [("s0", "s0")], "s0")
        second = simple_ts("b", {"t0": [fact("S", "v")]}, [("t0", "t0")],
                           "t0")
        assert not bisimilar(first, second, BisimMode.HISTORY)

    def test_deadlock_vs_loop(self):
        looping = simple_ts("a", {"s0": [fact("R", "v")]},
                            [("s0", "s0")], "s0")
        deadlock = simple_ts("b", {"t0": [fact("R", "v")]}, [], "t0")
        assert not bisimilar(looping, deadlock, BisimMode.HISTORY)
        assert not bisimilar(deadlock, looping, BisimMode.PERSISTENCE)

    def test_unfolded_loop(self):
        loop = simple_ts("a", {"s0": [fact("R", "v")]}, [("s0", "s0")], "s0")
        unrolled = simple_ts(
            "b", {"t0": [fact("R", "v")], "t1": [fact("R", "v")]},
            [("t0", "t1"), ("t1", "t0")], "t0")
        assert bisimilar(loop, unrolled, BisimMode.HISTORY)


class TestHistoryVsPersistence:
    def _forgetting_pair(self):
        """Two systems that differ only in whether a *dropped* value
        reappears under the same name: persistence-bisimilar, not
        history-bisimilar."""
        # System 1: R(v) -> S(w) -> R(v): the original value returns.
        first = simple_ts(
            "recall",
            {"s0": [fact("R", "v")], "s1": [fact("S", "w")],
             "s2": [fact("R", "v")]},
            [("s0", "s1"), ("s1", "s2"), ("s2", "s2")], "s0")
        # System 2: R(v) -> S(w) -> R(u): a different value comes back.
        second = simple_ts(
            "fresh",
            {"t0": [fact("R", "v")], "t1": [fact("S", "w")],
             "t2": [fact("R", "u")]},
            [("t0", "t1"), ("t1", "t2"), ("t2", "t2")], "t0")
        return first, second

    def test_persistence_identifies(self):
        first, second = self._forgetting_pair()
        assert bisimilar(first, second, BisimMode.PERSISTENCE)

    def test_history_distinguishes(self):
        first, second = self._forgetting_pair()
        assert not bisimilar(first, second, BisimMode.HISTORY)

    def test_bounded_agrees(self):
        first, second = self._forgetting_pair()
        assert bounded_bisimilar(first, second, depth=4,
                                 mode=BisimMode.PERSISTENCE)
        assert not bounded_bisimilar(first, second, depth=4,
                                     mode=BisimMode.HISTORY)
        # At depth 1 the difference is not yet observable.
        assert bounded_bisimilar(first, second, depth=1,
                                 mode=BisimMode.HISTORY)


class TestAgainstAbstractions:
    def test_rcycl_bisimilar_to_quotient(self, ex43_rcycl):
        quotient, _ = isomorphism_quotient(ex43_rcycl, fixed={"a"})
        assert bisimilar(ex43_rcycl, quotient, BisimMode.PERSISTENCE)

    def test_concrete_pool_vs_abstraction_bounded(self, ex42):
        abstraction = build_det_abstraction(ex42)
        concrete = explore_concrete(
            ex42, pool=["a", Fresh(50), Fresh(51), Fresh(52)], depth=3)
        assert bounded_bisimilar(concrete, abstraction, depth=2,
                                 mode=BisimMode.HISTORY)

    def test_concrete_pool_vs_abstraction_ex41(self, ex41):
        abstraction = build_det_abstraction(ex41)
        concrete = explore_concrete(
            ex41, pool=["a", Fresh(50), Fresh(51), Fresh(52)], depth=3)
        assert bounded_bisimilar(concrete, abstraction, depth=2,
                                 mode=BisimMode.HISTORY)

    def test_different_examples_not_bisimilar(self, ex41_abstraction,
                                              ex42_abstraction):
        assert not bisimilar(ex41_abstraction, ex42_abstraction,
                             BisimMode.HISTORY)

    def test_truncated_systems_rejected_for_full_check(self, ex42):
        concrete = explore_concrete(ex42, pool=["a", Fresh(50)], depth=1)
        abstraction = build_det_abstraction(ex42)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            bisimilar(concrete, abstraction, BisimMode.HISTORY)
