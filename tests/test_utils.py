"""Shared utilities: partitions, orderings, fresh pools."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.values import Fresh, ServiceCall
from repro.utils import (
    FreshPool, pairwise_disjoint, powerset, set_partitions, sorted_values,
    stable_dedup, value_sort_key)

BELL = {0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52}


class TestSetPartitions:
    @pytest.mark.parametrize("n", list(BELL))
    def test_bell_numbers(self, n):
        partitions = list(set_partitions(list(range(n))))
        assert len(partitions) == BELL[n]

    def test_blocks_cover_and_disjoint(self):
        items = list(range(4))
        for partition in set_partitions(items):
            flattened = [x for block in partition for x in block]
            assert sorted(flattened) == items

    def test_all_distinct(self):
        seen = set()
        for partition in set_partitions(list(range(4))):
            key = frozenset(frozenset(block) for block in partition)
            assert key not in seen
            seen.add(key)

    def test_deterministic(self):
        assert list(set_partitions([1, 2, 3])) == \
            list(set_partitions([1, 2, 3]))


class TestOrdering:
    def test_mixed_types_sortable(self):
        mixed = ["b", 2, Fresh(1), "a", 1, Fresh(0),
                 ServiceCall("f", ("x",))]
        ordered = sorted_values(mixed)
        assert ordered.index(1) < ordered.index("a")
        assert ordered.index("a") < ordered.index(Fresh(0))
        assert ordered.index(Fresh(0)) < ordered.index(Fresh(1))

    def test_stable_total_order(self):
        values = [Fresh(2), "x", 3, Fresh(1), "y"]
        assert sorted_values(sorted_values(values)) == sorted_values(values)

    @given(st.lists(st.one_of(
        st.integers(-5, 5), st.text(max_size=3),
        st.integers(0, 5).map(Fresh)), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_sort_key_total(self, values):
        # Sorting never raises and is idempotent over mixed types.
        once = sorted_values(values)
        assert sorted_values(once) == once


class TestFreshPool:
    def test_mints_smallest_unused(self):
        pool = FreshPool(used=[Fresh(0), Fresh(2), "unrelated"])
        assert pool.take() == Fresh(1)
        assert pool.take() == Fresh(3)

    def test_take_many(self):
        pool = FreshPool()
        assert pool.take_many(3) == [Fresh(0), Fresh(1), Fresh(2)]


class TestSmallHelpers:
    def test_powerset(self):
        subsets = list(powerset([1, 2]))
        assert subsets == [(), (1,), (2,), (1, 2)]

    def test_pairwise_disjoint(self):
        assert pairwise_disjoint([frozenset({1}), frozenset({2})])
        assert not pairwise_disjoint([frozenset({1}), frozenset({1, 2})])

    def test_stable_dedup(self):
        assert stable_dedup([3, 1, 3, 2, 1]) == [3, 1, 2]
