"""Seeded chaos: fault injection, supervised recovery, checkpoint/resume.

The fault-tolerance contract of PR 9: a parallel build that loses
workers — killed, hung, out of memory, replying with corrupted or
dropped frames — still converges to the *bit-identical* transition
system of the undisturbed sequential build, and a build interrupted at a
checkpoint safe point resumes from disk to the same result. Faults are
injected deterministically through :mod:`repro.engine.faults`
(``REPRO_FAULTS`` grammar), so every scenario here is replayable.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time

import pytest

from repro import verify
from repro.core.execution import clear_subproblem_caches
from repro.engine import (
    Checkpoint, CheckpointInterrupted, DetAbstractionGenerator, Explorer,
    FaultEvent, FaultPlan, ParallelExplorer)
from repro.errors import CheckpointError, ReproError, WorkerCrashError
from repro.gallery import student_registry
from repro.gallery.student import property_eventual_graduation_mu_lp
from repro.mucalc import parse_mu
from repro.workloads import commitment_blowup_dcds

from test_wire_codec import assert_bit_identical

START_METHODS = [
    method for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_subproblem_caches()
    yield
    clear_subproblem_caches()


@pytest.fixture(scope="module")
def reference():
    """The undisturbed sequential build every chaos run must reproduce."""
    clear_subproblem_caches()
    dcds = commitment_blowup_dcds(4)
    return Explorer(dcds.schema, max_states=100000).run(
        DetAbstractionGenerator(dcds))


def chaos_build(spec, workers=2, start_method=None, checkpoint=None,
                **kwargs):
    dcds = commitment_blowup_dcds(4)
    explorer = ParallelExplorer(
        dcds.schema, max_states=100000, workers=workers, batch_size=4,
        start_method=start_method, dispatch_timeout=1.5,
        faults=FaultPlan.parse(spec) if spec else None,
        checkpoint=checkpoint, **kwargs)
    return explorer.run(DetAbstractionGenerator(dcds))


class TestSpecParsing:
    def test_single_event(self):
        plan = FaultPlan.parse("kill:1@2")
        assert plan.events == [FaultEvent("kill", 1, 2)]
        assert plan.seed == 0
        assert bool(plan)

    def test_wildcard_and_arg(self):
        plan = FaultPlan.parse("delay:*@1:0.05")
        assert plan.events == [FaultEvent("delay", None, 1, 0.05)]

    def test_seed_and_multiple_events(self):
        plan = FaultPlan.parse("kill:0@2, corrupt:1@3, seed:7")
        assert [e.kind for e in plan.events] == ["kill", "corrupt"]
        assert plan.seed == 7

    def test_spec_round_trip(self):
        spec = "kill:0@2,delay:*@1:0.05,seed:9"
        assert FaultPlan.parse(spec).spec() == spec

    def test_empty_spec_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("").spec() == ""

    @pytest.mark.parametrize("bad", [
        "explode:0@1",       # unknown kind
        "kill:0",            # missing @nth
        "kill:x@1",          # non-integer worker
        "kill:0@x",          # non-integer nth
        "kill:0@0",          # nth is 1-based
        "kill:-1@1",         # negative worker slot
        "seed:x",            # malformed seed
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            FaultPlan.parse(bad)

    def test_for_worker_filters_by_slot(self):
        plan = FaultPlan.parse("kill:0@2,oom:1@1,corrupt:*@3,seed:5")
        worker0 = plan.for_worker(0)
        assert [e.kind for e in worker0.events] == ["kill", "corrupt"]
        assert worker0.seed == 5
        assert [e.kind for e in plan.for_worker(2).events] == ["corrupt"]
        assert FaultPlan.parse("kill:0@1").for_worker(3) is None

    def test_worker_faults_pickle_round_trip(self):
        # The schedule ships to spawn-started workers via Process args.
        faults = FaultPlan.parse("corrupt:*@2,seed:11").for_worker(0)
        clone = pickle.loads(pickle.dumps(faults))
        assert clone.events == faults.events
        assert clone.seed == 11
        assert clone.dispatches == 0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "kill:0@2")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.events[0].kind == "kill"


CHAOS_CASES = [
    pytest.param("kill:0@2", 2, {"crashes": 1}, id="kill"),
    pytest.param("kill:0@1,kill:1@1", 2, {"crashes": 2}, id="double-kill"),
    pytest.param("oom:1@1", 2, {"crashes": 1}, id="oom"),
    pytest.param("corrupt:0@2,seed:5", 2, {"integrity_errors": 1},
                 id="corrupt"),
    pytest.param("hang:1@2", 2, {"crashes": 1}, id="hang"),
    pytest.param("drop:0@3", 2, {"crashes": 1}, id="drop"),
    pytest.param("delay:*@1:0.02", 2, {}, id="delay"),
    pytest.param("kill:0@2,corrupt:1@3,seed:9", 2,
                 {"crashes": 1, "integrity_errors": 1}, id="mixed"),
    pytest.param("kill:2@1", 4, {"crashes": 1}, id="kill-w4"),
]


class TestChaosRecovery:
    @pytest.mark.parametrize("spec,workers,minimums", CHAOS_CASES)
    def test_recovered_build_is_bit_identical(self, reference, spec,
                                              workers, minimums):
        result = chaos_build(spec, workers=workers)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.growth == reference.stats.growth
        stats = result.stats.parallel
        for counter, floor in minimums.items():
            assert stats[counter] >= floor, (counter, stats)
        assert stats["respawns"] == stats["crashes"]
        if minimums:
            assert stats["recovery_sec"] > 0.0
        else:  # delay under the timeout must not trip recovery at all
            assert stats["crashes"] == 0
            assert stats["redispatches"] == 0

    @pytest.mark.skipif("spawn" not in START_METHODS,
                        reason="spawn unavailable")
    def test_recovery_under_spawn(self, reference):
        result = chaos_build("kill:0@1,seed:3", start_method="spawn")
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.parallel["crashes"] >= 1

    def test_env_spec_drives_injection(self, reference, monkeypatch):
        # REPRO_FAULTS is read at pool start when no plan is passed.
        monkeypatch.setenv("REPRO_FAULTS", "kill:0@2")
        result = chaos_build(None)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.parallel["crashes"] >= 1

    def test_retries_exhausted_raises_taxonomy_error(self):
        with pytest.raises(WorkerCrashError) as excinfo:
            chaos_build("kill:0@1", retry_limit=0)
        assert excinfo.value.reason == "retries-exhausted"
        assert excinfo.value.worker == 0
        assert excinfo.value.batches_lost >= 1


class TestShutdownRobustness:
    def test_hung_worker_never_hangs_shutdown(self, reference):
        # A parked worker (hang fault) must be detected by the dispatch
        # timeout and terminated; the whole build stays time-bounded.
        started = time.monotonic()
        result = chaos_build("hang:0@1")
        elapsed = time.monotonic() - started
        assert elapsed < 60.0
        assert_bit_identical(reference.transition_system,
                             result.transition_system)

    def test_no_zombie_workers_after_recovery(self):
        chaos_build("kill:0@2,kill:1@1")
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, \
                multiprocessing.active_children()
            time.sleep(0.05)

    def test_no_zombie_workers_after_crash_propagation(self):
        with pytest.raises(WorkerCrashError):
            chaos_build("kill:0@1", retry_limit=0)
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, \
                multiprocessing.active_children()
            time.sleep(0.05)


def interrupted_checkpoint(tmp_path, chunks=2, workers=None):
    """Run until the injected interruption; return the checkpoint path."""
    path = str(tmp_path / "build.ck")
    config = Checkpoint(path, interval=0.0)
    config._interrupt_after_chunks = chunks
    dcds = commitment_blowup_dcds(4)
    clear_subproblem_caches()
    if workers is None:
        explorer = Explorer(dcds.schema, max_states=100000,
                            checkpoint=config)
    else:
        explorer = ParallelExplorer(
            dcds.schema, max_states=100000, workers=workers, batch_size=4,
            checkpoint=config)
    with pytest.raises(CheckpointInterrupted):
        explorer.run(DetAbstractionGenerator(dcds))
    return path


def resumed_build(path, workers=None, spec=None):
    dcds = commitment_blowup_dcds(4)
    clear_subproblem_caches()
    if workers is None:
        explorer = Explorer(dcds.schema, max_states=100000,
                            checkpoint=Checkpoint(path, interval=0.0))
    else:
        explorer = ParallelExplorer(
            dcds.schema, max_states=100000, workers=workers, batch_size=4,
            dispatch_timeout=1.5, checkpoint=Checkpoint(path, interval=0.0),
            faults=FaultPlan.parse(spec) if spec else None)
    return explorer.run(DetAbstractionGenerator(dcds))


class TestCheckpointResume:
    def test_sequential_interrupt_resume(self, reference, tmp_path):
        path = interrupted_checkpoint(tmp_path)
        result = resumed_build(path)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.growth == reference.stats.growth

    def test_parallel_interrupt_parallel_resume(self, reference, tmp_path):
        path = interrupted_checkpoint(tmp_path, chunks=3, workers=2)
        result = resumed_build(path, workers=2)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.growth == reference.stats.growth

    def test_cross_mode_resume(self, reference, tmp_path):
        # A checkpoint is mode-agnostic: parallel writer, sequential reader.
        path = interrupted_checkpoint(tmp_path, workers=2)
        result = resumed_build(path, workers=None)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)

    def test_resume_under_chaos(self, reference, tmp_path):
        # Recovery and resume compose: the resumed run loses a worker too.
        path = interrupted_checkpoint(tmp_path, workers=2)
        result = resumed_build(path, workers=2, spec="kill:0@1,seed:3")
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.parallel["crashes"] >= 1

    def test_complete_checkpoint_short_circuits(self, reference, tmp_path):
        path = str(tmp_path / "done.ck")
        dcds = commitment_blowup_dcds(4)
        resumed_build(path)  # runs to completion, manifest marked complete
        before = os.path.getmtime(path)
        clear_subproblem_caches()
        result = Explorer(dcds.schema, max_states=100000,
                          checkpoint=Checkpoint(path)).run(
            DetAbstractionGenerator(dcds))
        assert_bit_identical(reference.transition_system,
                             result.transition_system)
        assert result.stats.expansions == reference.stats.expansions
        assert os.path.getmtime(path) == before  # nothing re-explored

    def test_torn_tail_is_ignored(self, reference, tmp_path):
        # Bytes past the manifest's data_bytes are a torn write: the
        # loader never reads them and the resumed writer truncates them.
        path = interrupted_checkpoint(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x00garbage from a torn write\xff" * 4)
        result = resumed_build(path)
        assert_bit_identical(reference.transition_system,
                             result.transition_system)

    def test_corrupted_chunk_raises(self, tmp_path):
        path = interrupted_checkpoint(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)[0]
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last ^ 0xFF]))
        with pytest.raises(CheckpointError):
            resumed_build(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = interrupted_checkpoint(tmp_path)
        with open(path + ".manifest") as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(path + ".manifest", "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CheckpointError, match="version"):
            resumed_build(path)

    def test_spec_mismatch_raises(self, tmp_path):
        path = interrupted_checkpoint(tmp_path)
        other = commitment_blowup_dcds(3)
        clear_subproblem_caches()
        with pytest.raises(CheckpointError, match="different spec"):
            Explorer(other.schema, max_states=100000,
                     checkpoint=Checkpoint(path)).run(
                DetAbstractionGenerator(other))

    def test_resume_without_manifest_raises(self, tmp_path):
        dcds = commitment_blowup_dcds(3)
        explorer = Explorer(dcds.schema,
                            checkpoint=Checkpoint(str(tmp_path / "no.ck")))
        with pytest.raises(CheckpointError, match="nothing to resume"):
            explorer.resume(DetAbstractionGenerator(dcds))
        with pytest.raises(CheckpointError, match="needs a checkpoint"):
            Explorer(dcds.schema).resume(DetAbstractionGenerator(dcds))

    def test_non_parallel_safe_generator_skips_checkpoint(self, tmp_path):
        # Same gate as workers=: impure generators are never checkpointed.
        path = str(tmp_path / "gate.ck")
        dcds = commitment_blowup_dcds(3)
        generator = DetAbstractionGenerator(dcds)
        generator.parallel_safe = False
        Explorer(dcds.schema, max_states=100000,
                 checkpoint=Checkpoint(path)).run(generator)
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".manifest")

    def test_rcycl_route_ignores_checkpoint(self, tmp_path):
        path = str(tmp_path / "rcycl.ck")
        report = verify(student_registry(),
                        property_eventual_graduation_mu_lp(),
                        checkpoint=path)
        assert report.holds
        assert report.route == "rcycl"
        assert not os.path.exists(path + ".manifest")

    def test_verify_checkpoint_round_trip(self, tmp_path):
        path = str(tmp_path / "verify.ck")
        dcds = commitment_blowup_dcds(3)
        formula = parse_mu("mu Z. (Seed('c') | <-> Z)")
        first = verify(dcds, formula, checkpoint=path)
        assert os.path.exists(path + ".manifest")
        clear_subproblem_caches()
        again = verify(commitment_blowup_dcds(3), formula, checkpoint=path)
        assert again.holds == first.holds
