"""The DCDS builder and its text syntaxes."""

import pytest

from repro.errors import ParseError, ProcessError
from repro.core import DCDSBuilder, ServiceSemantics
from repro.core.builder import (
    _split_top_level, parse_constraint, parse_effect, parse_facts,
    split_body)
from repro.fol import parse_formula
from repro.fol.ast import TRUE
from repro.relational import fact
from repro.relational.values import Param, ServiceCall, Var


class TestSplitting:
    def test_split_respects_parens(self):
        assert _split_top_level("R(a, b), S(c)", ",") == ["R(a, b)", " S(c)"]

    def test_split_respects_strings(self):
        parts = _split_top_level("R('x,y'), S(z)", ",")
        assert parts == ["R('x,y')", " S(z)"]

    def test_effect_arrow_split(self):
        parts = _split_top_level("R(x) ~> S(x)", "~>")
        assert parts == ["R(x) ", " S(x)"]


class TestParseFacts:
    def test_plain(self):
        assert parse_facts("R(a), S(b, c)") == [
            fact("R", "a"), fact("S", "b", "c")]

    def test_numbers_and_quotes(self):
        assert parse_facts("R(1, 'two')") == [fact("R", 1, "two")]

    def test_nullary(self):
        assert parse_facts("halted()") == [fact("halted")]


class TestParseEffect:
    def test_body_split(self):
        effect = parse_effect("R(x) & ~S(x) & exists y. T(y) ~> U(x)")
        # Positive conjuncts to q+, the rest to Q-.
        assert "R" in {a.relation for a in effect.q_plus.atoms()}
        assert "T" in {a.relation for a in effect.q_plus.atoms()}
        assert "S" in {a.relation for a in effect.q_minus.atoms()}

    def test_pure_filter_body(self):
        effect = parse_effect("~S('a') ~> U('b')")
        assert effect.q_plus == TRUE

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_effect("R(x), S(x)")

    def test_empty_head(self):
        with pytest.raises(ParseError):
            parse_effect("R(x) ~> ")

    def test_split_body_passthrough(self):
        q_plus, q_minus = split_body(parse_formula("R(x) | S(x)"))
        assert q_minus == TRUE


class TestParseConstraint:
    def test_single_equality(self):
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        assert constraint.equalities == ((Var("x"), Var("y")),)

    def test_multiple_equalities(self):
        constraint = parse_constraint("T(x, y, z) -> x = y & y = z")
        assert len(constraint.equalities) == 2

    def test_constants_allowed(self):
        constraint = parse_constraint("P(x) -> x = 'c'")
        assert constraint.equalities == ((Var("x"), "c"),)

    def test_non_equality_rhs_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("P(x) -> Q(x, x)")


class TestBuilder:
    def test_action_signature_parsing(self):
        builder = DCDSBuilder(name="sig")
        builder.schema("R/1", "S/2")
        builder.initial("R('a')")
        builder.action("move(p, q)", "R($p) ~> S($p, $q)")
        builder.rule("exists z. R($p) & R($q) & R(z)", "move")
        dcds = builder.build()
        action = dcds.process.action("move")
        assert action.params == (Param("p"), Param("q"))

    def test_key_declaration(self):
        builder = DCDSBuilder(name="key")
        builder.schema("R/2")
        builder.key("R", 0)
        builder.initial("R('a', 'b')")
        builder.action("noop", "R(x, y) ~> R(x, y)")
        builder.rule("true", "noop")
        dcds = builder.build()
        assert len(dcds.data.constraints) == 1
        from repro.relational import Instance

        bad = Instance([fact("R", "k", "u"), fact("R", "k", "v")])
        assert not dcds.data.satisfies_constraints(bad)

    def test_key_requires_declared_relation(self):
        builder = DCDSBuilder(name="key2")
        with pytest.raises(ProcessError):
            builder.key("R", 0)

    def test_semantics_selection(self):
        builder = DCDSBuilder(name="sem")
        builder.schema("R/1")
        builder.initial("R('a')")
        builder.action("noop", "R(x) ~> R(x)")
        builder.rule("true", "noop")
        assert builder.build_deterministic().semantics is \
            ServiceSemantics.DETERMINISTIC
        assert builder.build_nondeterministic().semantics is \
            ServiceSemantics.NONDETERMINISTIC

    def test_constants_set(self):
        builder = DCDSBuilder(name="const", constants={"a"})
        builder.schema("R/1")
        builder.initial("R(a)")
        builder.action("noop", "R(a) ~> R(a)")
        builder.rule("true", "noop")
        dcds = builder.build()
        assert "a" in dcds.known_constants()

    def test_effectspec_objects_accepted(self):
        from repro.core.process_layer import EffectSpec
        from repro.fol import atom

        builder = DCDSBuilder(name="obj")
        builder.schema("R/1")
        builder.initial("R('a')")
        spec = EffectSpec(parse_formula("R(x)"), TRUE,
                          (atom("R", Var("x")),))
        builder.action("noop", spec)
        builder.rule("true", "noop")
        assert builder.build().process.action("noop").effects == (spec,)

    def test_describe_mentions_everything(self):
        builder = DCDSBuilder(name="full")
        builder.schema("R/1")
        builder.initial("R('a')")
        builder.service("f/1")
        builder.action("go", "R(x) ~> R(f(x))")
        builder.rule("true", "go")
        text = builder.build().describe()
        for token in ("full", "R/1", "f/1", "go", "rule"):
            assert token in text
