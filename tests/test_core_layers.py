"""Data layer (constraints) and process layer (validation)."""

import pytest

from repro.errors import ConstraintViolation, ProcessError, SchemaError
from repro.core.data_layer import (
    DataLayer, EqualityConstraint, functional_dependency, key_constraint)
from repro.core.builder import parse_constraint, parse_effect
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction)
from repro.fol import atom, parse_formula
from repro.fol.ast import TRUE, Atom
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Param, ServiceCall, Var


class TestEqualityConstraints:
    def test_satisfied(self):
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        instance = Instance([fact("P", "a"), fact("Q", "a", "b")])
        assert constraint.satisfied_by(instance)

    def test_violated(self):
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        instance = Instance([fact("P", "a"), fact("Q", "b", "b")])
        assert not constraint.satisfied_by(instance)
        assert constraint.violations(instance)

    def test_vacuous(self):
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        assert constraint.satisfied_by(Instance([fact("P", "a")]))

    def test_constant_equality_is_unsatisfiable_when_triggered(self):
        constraint = parse_constraint("P(x) -> 'u' = 'v'")
        assert not constraint.satisfied_by(Instance([fact("P", "a")]))
        assert constraint.satisfied_by(Instance.empty())

    def test_unknown_equality_variable_rejected(self):
        with pytest.raises(SchemaError):
            EqualityConstraint(atom("P", Var("x")),
                               ((Var("y"), Var("x")),))

    def test_functional_dependency(self):
        fd = functional_dependency("R", 3, (0,), 2)
        good = Instance([fact("R", "k", "u", "v"),
                         fact("R", "k", "w", "v")])
        bad = Instance([fact("R", "k", "u", "v1"),
                        fact("R", "k", "u", "v2")])
        assert fd.satisfied_by(good)
        assert not fd.satisfied_by(bad)

    def test_key_constraint_covers_all_dependents(self):
        constraints = key_constraint("R", 3, (0,))
        assert len(constraints) == 2
        bad = Instance([fact("R", "k", "u1", "v"),
                        fact("R", "k", "u2", "v")])
        assert not all(c.satisfied_by(bad) for c in constraints)


class TestDataLayer:
    def test_initial_must_satisfy_constraints(self):
        schema = DatabaseSchema.of("P/1", "Q/2")
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        bad = Instance([fact("P", "a"), fact("Q", "b", "b")])
        with pytest.raises(ConstraintViolation):
            DataLayer(schema, (constraint,), bad)

    def test_initial_must_conform_to_schema(self):
        schema = DatabaseSchema.of("P/1")
        with pytest.raises(Exception):
            DataLayer(schema, (), Instance([fact("P", "a", "b")]))

    def test_constraint_relation_checked(self):
        schema = DatabaseSchema.of("P/1")
        constraint = parse_constraint("Zed(x) -> x = x")
        with pytest.raises(SchemaError):
            DataLayer(schema, (constraint,), Instance.empty())

    def test_check_constraints_diagnostics(self):
        schema = DatabaseSchema.of("P/1", "Q/2")
        constraint = parse_constraint("P(x) & Q(y, z) -> x = y")
        layer = DataLayer(schema, (constraint,),
                          Instance([fact("P", "a"), fact("Q", "a", "a")]))
        bad = Instance([fact("P", "a"), fact("Q", "b", "b")])
        assert not layer.satisfies_constraints(bad)
        with pytest.raises(ConstraintViolation):
            layer.check_constraints(bad)

    def test_without_constraints(self):
        schema = DatabaseSchema.of("P/1")
        layer = DataLayer(schema, (), Instance([fact("P", "a")]))
        assert layer.without_constraints().constraints == ()


class TestEffectSpec:
    def test_q_plus_must_be_positive(self):
        with pytest.raises(ProcessError):
            EffectSpec(parse_formula("~R(x)"), TRUE, (atom("S", Var("x")),))

    def test_q_minus_vars_subset_of_q_plus(self):
        with pytest.raises(ProcessError):
            EffectSpec(parse_formula("R(x)"), parse_formula("~S(y)"),
                       (atom("S", Var("x")),))

    def test_head_vars_must_come_from_q_plus(self):
        with pytest.raises(ProcessError):
            EffectSpec(parse_formula("R(x)"), TRUE, (atom("S", Var("y")),))

    def test_head_call_vars_checked(self):
        with pytest.raises(ProcessError):
            EffectSpec(parse_formula("R(x)"), TRUE,
                       (Atom("S", (ServiceCall("f", (Var("y"),)),)),))

    def test_effect_text_round_trip(self):
        effect = parse_effect("R(x) & ~S(x) ~> T(f(x)), U(x)")
        assert effect.q_plus == parse_formula("R(x)")
        assert effect.q_minus == parse_formula("~S(x)")
        assert len(effect.head) == 2
        assert effect.service_calls() == {ServiceCall("f", (Var("x"),))}


class TestActionAndProcess:
    def _action(self):
        return Action("alpha", (Param("p"),), (
            EffectSpec(parse_formula("R($p)"), TRUE,
                       (atom("S", Param("p")),)),))

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(ProcessError):
            Action("alpha", (), (
                EffectSpec(parse_formula("R($p)"), TRUE,
                           (atom("S", Param("p")),)),))

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ProcessError):
            Action("alpha", (Param("p"), Param("p")), ())

    def test_process_validates_rule_targets(self):
        action = self._action()
        with pytest.raises(ProcessError):
            ProcessLayer((), (action,),
                         (CARule(parse_formula("R($p)"), "missing"),))

    def test_rule_parameters_must_match_action(self):
        action = self._action()
        with pytest.raises(ProcessError):
            ProcessLayer((), (action,),
                         (CARule(parse_formula("true"), "alpha"),))

    def test_rule_query_must_not_have_free_variables(self):
        with pytest.raises(ProcessError):
            CARule(parse_formula("R(x)"), "alpha")

    def test_undeclared_service_rejected(self):
        action = Action("alpha", (), (
            EffectSpec(parse_formula("R(x)"), TRUE,
                       (Atom("S", (ServiceCall("f", (Var("x"),)),)),)),))
        with pytest.raises(ProcessError):
            ProcessLayer((), (action,), ())

    def test_duplicate_names_rejected(self):
        action = self._action()
        with pytest.raises(ProcessError):
            ProcessLayer((), (action, action), ())
        with pytest.raises(ProcessError):
            ProcessLayer((ServiceFunction("f", 1),
                          ServiceFunction("f", 2)), (), ())

    def test_lookups(self):
        action = self._action()
        layer = ProcessLayer(
            (ServiceFunction("f", 1),), (action,),
            (CARule(parse_formula("R($p)"), "alpha"),))
        assert layer.action("alpha") is action
        assert layer.function("f").arity == 1
        assert layer.rules_for("alpha")
        with pytest.raises(ProcessError):
            layer.action("nope")
