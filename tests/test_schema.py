"""Relation and database schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import (
    DatabaseSchema, RelationSchema, parse_relation_spec)


class TestRelationSchema:
    def test_basic(self):
        relation = RelationSchema("R", 2)
        assert relation.name == "R"
        assert relation.arity == 2
        assert repr(relation) == "R/2"

    def test_attributes(self):
        relation = RelationSchema("Hotel", 2, ("name", "price"))
        assert relation.attribute_index("price") == 1

    def test_unknown_attribute(self):
        relation = RelationSchema("Hotel", 2, ("name", "price"))
        with pytest.raises(SchemaError):
            relation.attribute_index("city")

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("only_one",))

    def test_negative_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", -1)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)

    def test_nullary_relation_allowed(self):
        assert RelationSchema("halted", 0).arity == 0


class TestParseRelationSpec:
    def test_slash_form(self):
        assert parse_relation_spec("R/3") == RelationSchema("R", 3)

    def test_attribute_form(self):
        parsed = parse_relation_spec("Hotel(name, price)")
        assert parsed.arity == 2
        assert parsed.attributes == ("name", "price")

    def test_bad_spec(self):
        with pytest.raises(SchemaError):
            parse_relation_spec("R")

    def test_bad_arity(self):
        with pytest.raises(SchemaError):
            parse_relation_spec("R/x")


class TestDatabaseSchema:
    def test_of_mixed_specs(self):
        schema = DatabaseSchema.of("R/1", ("S", 2),
                                   RelationSchema("T", 0))
        assert schema.names() == ("R", "S", "T")
        assert schema.arity("S") == 2

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema.of("R/1", "R/2")

    def test_lookup_unknown(self):
        schema = DatabaseSchema.of("R/1")
        with pytest.raises(SchemaError):
            schema.relation("S")

    def test_contains_and_len(self):
        schema = DatabaseSchema.of("R/1", "S/2")
        assert "R" in schema
        assert "T" not in schema
        assert len(schema) == 2

    def test_extend(self):
        schema = DatabaseSchema.of("R/1").extend("S/2")
        assert schema.names() == ("R", "S")

    def test_extend_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema.of("R/1").extend("R/1")

    def test_restrict(self):
        schema = DatabaseSchema.of("R/1", "S/2", "T/3").restrict(["R", "T"])
        assert schema.names() == ("R", "T")

    def test_restrict_unknown(self):
        with pytest.raises(SchemaError):
            DatabaseSchema.of("R/1").restrict(["S"])

    def test_iteration_order_preserved(self):
        schema = DatabaseSchema.of("B/1", "A/1")
        assert [relation.name for relation in schema] == ["B", "A"]
