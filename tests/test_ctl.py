"""CTL-style sugar: encodings and their persistence-guarded variants."""

import pytest

from repro.gallery import student_registry
from repro.mucalc import (
    AF, AG, AG_live, AU, AU_live, EF, EF_live, EG, EU, Fragment,
    GuardedShape, classify, invariant_body, invariant_shape, parse_mu,
    reachability_body, reachability_shape)
from repro.mucalc.ast import Box, Diamond, MAnd, MOr, Mu, Nu, PredVar
from repro.mucalc.checker import ModelChecker
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem


@pytest.fixture
def ladder():
    """s0 -> s1 -> s2 with a value that persists only through s1."""
    schema = DatabaseSchema.of("P/1")
    ts = TransitionSystem(schema, "s0")
    ts.add_state("s0", Instance([fact("P", "v")]))
    ts.add_state("s1", Instance([fact("P", "v")]))
    ts.add_state("s2", Instance([fact("P", "w")]))
    ts.add_edge("s0", "s1")
    ts.add_edge("s1", "s2")
    ts.add_edge("s2", "s2")
    return ts


class TestEncodingShapes:
    def test_ef_is_mu(self):
        assert isinstance(EF(parse_mu("P('v')")), Mu)

    def test_ag_is_nu(self):
        assert isinstance(AG(parse_mu("P('v')")), Nu)

    def test_fresh_variables_do_not_collide(self):
        formula = AG(EF(parse_mu("P('v')")))
        names = {node.var for node in formula.walk()
                 if isinstance(node, (Mu, Nu))}
        assert len(names) == 2

    def test_guarded_variants_are_muLP(self):
        from repro.mucalc import exists_live
        from repro.mucalc.ast import QF
        from repro.fol import atom
        from repro.relational.values import Var

        inner = QF(atom("P", Var("x")))
        formula = exists_live("x", EF_live(inner, guard="x"))
        assert classify(formula) is Fragment.MU_LP
        formula2 = exists_live("x", AG_live(inner, guard="x"))
        assert classify(formula2) is Fragment.MU_LP


class TestSemantics:
    def test_ef_vs_ef_live(self, ladder):
        checker = ModelChecker(ladder)
        from repro.mucalc import exists_live
        from repro.mucalc.ast import QF
        from repro.fol import atom, neq
        from repro.relational.values import Var

        x = Var("x")
        # Plain EF: from s0, exists x live now (v) such that eventually a
        # state where x is NOT in P... v disappears at s2.
        not_in_p = QF(neq(x, x))  # placeholder never true
        gone = ~QF(atom("P", x))
        plain = exists_live("x", EF(gone))
        assert checker.models(plain)
        # Guarded EF_live: x must persist along the path, but v is dropped
        # exactly when "gone" would become true — so no witness.
        guarded = exists_live("x", EF_live(gone, guard="x"))
        assert not checker.models(guarded)

    def test_au_strong_until(self, ladder):
        checker = ModelChecker(ladder)
        formula = AU(parse_mu("P('v')"), parse_mu("P('w')"))
        assert checker.models(formula)

    def test_au_fails_without_goal(self, ladder):
        checker = ModelChecker(ladder)
        formula = AU(parse_mu("P('v')"), parse_mu("P('nope')"))
        assert not checker.models(formula)

    def test_eu(self, ladder):
        checker = ModelChecker(ladder)
        assert checker.models(EU(parse_mu("P('v')"), parse_mu("P('w')")))

    def test_au_live_on_students(self, students_rcycl):
        """The Appendix E property shape: Stud(x) until graduation, with
        x persisting."""
        from repro.mucalc import exists_live
        from repro.mucalc.ast import QF
        from repro.fol import atom, exists as fo_exists
        from repro.relational.values import Var

        x = Var("x")
        stud = QF(atom("Stud", x))
        grad = QF(fo_exists("y", atom("Grad", x, Var("y"))))
        checker = ModelChecker(students_rcycl)
        # Not all paths graduate (study loops forever): AU fails...
        formula = exists_live("x", AU_live(stud, grad, guard="x"))
        enrolled_states = checker.evaluate(exists_live("x", stud))
        assert enrolled_states  # there are states with students
        assert not checker.models(formula)  # initial state has no student


class TestDestructurers:
    """Direct coverage for the encoding inverses, including malformed
    shapes (the witness layer depends on these answering None rather
    than mis-destructuring)."""

    def test_reachability_body_roundtrip(self):
        phi = parse_mu("P('v')")
        assert reachability_body(EF(phi)) == phi

    def test_invariant_body_roundtrip(self):
        phi = parse_mu("P('v')")
        assert invariant_body(AG(phi)) == phi

    def test_bodies_tolerate_argument_order(self):
        flipped = Mu("Z", MOr.of(Diamond(PredVar("Z")), parse_mu("P('v')")))
        assert reachability_body(flipped) == parse_mu("P('v')")
        flipped = Nu("Z", MAnd.of(Box(PredVar("Z")), parse_mu("P('v')")))
        assert invariant_body(flipped) == parse_mu("P('v')")

    def test_wrong_fixpoint_type(self):
        assert reachability_body(AG(parse_mu("P('v')"))) is None
        assert invariant_body(EF(parse_mu("P('v')"))) is None

    def test_missing_self_loop(self):
        assert reachability_body(parse_mu("mu Z. P('v')")) is None
        assert reachability_body(
            parse_mu("mu Z. (P('v') | <-> P('w'))")) is None
        assert invariant_body(parse_mu("nu Z. P('v')")) is None

    def test_wrong_modality(self):
        assert reachability_body(parse_mu("mu Z. (P('v') | [-] Z)")) is None
        assert invariant_body(parse_mu("nu Z. (P('v') & <-> Z)")) is None

    def test_variable_free_in_body_rejected(self):
        assert reachability_body(
            parse_mu("mu Z. ((P('v') & Z) | <-> Z)")) is None
        assert invariant_body(
            parse_mu("nu Z. ((P('v') | Z) & [-] Z)")) is None

    def test_self_loop_only_rejected(self):
        # ``mu Z. <-> Z`` has no body at all.
        assert reachability_body(parse_mu("mu Z. <-> Z")) is None


class TestGuardedShapes:
    def test_plain_encoding_gives_empty_guard(self):
        shape = reachability_shape(parse_mu("mu Z. (P('v') | <-> Z)"))
        assert shape == GuardedShape(parse_mu("P('v')"), ())
        shape = invariant_shape(parse_mu("nu Z. (P('v') & [-] Z)"))
        assert shape == GuardedShape(parse_mu("P('v')"), ())

    def test_guarded_encoding_recovers_terms(self):
        shape = reachability_shape(
            parse_mu("mu Z. (P('v') | <-> (live('c') & Z))"))
        assert shape is not None
        assert shape.body == parse_mu("P('v')")
        assert shape.guard == ("c",)

    def test_multiple_live_conjuncts_flatten(self):
        shape = invariant_shape(
            parse_mu("nu Z. (P('v') & [-] (live('x') & live('y') & Z))"))
        assert shape is not None
        assert shape.guard == ("x", "y")

    def test_conjunct_order_inside_modality_tolerated(self):
        shape = reachability_shape(
            parse_mu("mu Z. (<-> (Z & live('c')) | P('v'))"))
        assert shape is not None
        assert shape.guard == ("c",)
        assert shape.body == parse_mu("P('v')")

    def test_implication_form_box_stays_unrecognized(self):
        # ``[-](live -> Z)`` has different violation semantics; the
        # destructurer must not conflate it with the conjunction form.
        assert invariant_shape(
            parse_mu("nu Z. (P('v') & [-] (live('c') -> Z))")) is None

    def test_duplicate_recursion_variable_rejected(self):
        assert reachability_shape(
            parse_mu("mu Z. (P('v') | <-> (Z & Z & live('c')))")) is None

    def test_foreign_conjunct_inside_modality_rejected(self):
        assert reachability_shape(
            parse_mu("mu Z. (P('v') | <-> (live('c') & Q('q') & Z))")) \
            is None

    def test_variable_free_in_body_rejected(self):
        assert invariant_shape(
            parse_mu("nu Z. ((P('v') | Z) & [-] (live('c') & Z))")) is None

    def test_non_fixpoint_and_missing_loop(self):
        assert reachability_shape(parse_mu("P('v')")) is None
        assert invariant_shape(parse_mu("nu Z. P('v')")) is None

    def test_shape_guard_may_carry_variables(self):
        # Non-ground guards are returned verbatim; groundness is the
        # certificate extractor's concern, not the destructurer's.
        shape = reachability_shape(
            parse_mu("mu Z. (P('v') | <-> (live(x) & Z))"))
        assert shape is not None
        assert len(shape.guard) == 1
