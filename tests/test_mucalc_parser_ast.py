"""µ-calculus parser and AST operations."""

import pytest

from repro.errors import FormulaError, ParseError
from repro.fol import atom
from repro.mucalc import parse_mu
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, Nu,
    PredVar, QF)
from repro.relational.values import Var

X, Y = Var("x"), Var("y")


class TestParser:
    def test_fixpoints(self):
        parsed = parse_mu("mu Z. (R('a') | <-> Z)")
        assert isinstance(parsed, Mu)
        assert parsed.var == "Z"
        parsed = parse_mu("nu W. [-] W")
        assert isinstance(parsed, Nu)

    def test_modalities(self):
        assert isinstance(parse_mu("<-> true"), Diamond)
        assert isinstance(parse_mu("[-] false"), Box)

    def test_quantifiers(self):
        parsed = parse_mu("E x, y. R(x, y)")
        assert isinstance(parsed, MExists)
        assert parsed.variables == (X, Y)
        assert isinstance(parse_mu("A x. live(x)"), MForall)

    def test_live(self):
        parsed = parse_mu("live(x, 'c')")
        assert parsed == Live((X, "c"))

    def test_atoms_wrapped_in_qf(self):
        parsed = parse_mu("R(x) & x != y")
        assert isinstance(parsed, MAnd)
        assert isinstance(parsed.subs[0], QF)
        assert isinstance(parsed.subs[1], QF)

    def test_pred_var_must_be_bound(self):
        with pytest.raises(ParseError):
            parse_mu("<-> Z")

    def test_pred_var_scoping(self):
        parsed = parse_mu("mu Z. (<-> Z) & nu Z. [-] Z")
        assert isinstance(parsed, Mu)

    def test_implication_sugar(self):
        parsed = parse_mu("R('a') -> <-> R('a')")
        assert isinstance(parsed, MOr)

    def test_constants_parameter(self):
        parsed = parse_mu("R(a)", constants={"a"})
        assert parsed == QF(atom("R", "a"))

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_mu("R(x) R(y)")

    def test_nested_precedence(self):
        parsed = parse_mu("~ <-> R('a') | [-] S('b')")
        assert isinstance(parsed, MOr)
        assert isinstance(parsed.subs[0], MNot)


class TestAst:
    def test_connective_sugar(self):
        left, right = QF(atom("R", X)), QF(atom("S", X))
        assert isinstance(left & right, MAnd)
        assert isinstance(left | right, MOr)
        assert isinstance(~left, MNot)
        assert isinstance(left.implies(right), MOr)

    def test_free_ivars(self):
        formula = MExists((X,), MAnd.of(Live((X, Y)), QF(atom("R", X))))
        assert formula.free_ivars() == {Y}

    def test_free_pvars(self):
        formula = Mu("Z", MOr.of(PredVar("Z"), Diamond(PredVar("W"))))
        assert formula.free_pvars() == {"W"}

    def test_is_closed(self):
        assert parse_mu("mu Z. (R('a') | <-> Z)").is_closed()
        assert not parse_mu("mu Z. (R(x) | <-> Z)").is_closed()

    def test_substitute_respects_binding(self):
        formula = MExists((X,), QF(atom("R", X, Y)))
        result = formula.substitute({X: "vx", Y: "vy"})
        assert result == MExists((X,), QF(atom("R", X, "vy")))

    def test_substitute_into_live(self):
        formula = Live((X,))
        assert formula.substitute({X: "v"}) == Live(("v",))

    def test_walk_visits_all(self):
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        kinds = {type(node).__name__ for node in formula.walk()}
        assert kinds == {"Mu", "MOr", "QF", "Diamond", "PredVar"}

    def test_flattening(self):
        one, two, three = (QF(atom("R", i)) for i in range(3))
        assert len(MAnd.of(MAnd.of(one, two), three).subs) == 3
        assert len(MOr.of(one, MOr.of(two, three)).subs) == 3

    def test_empty_quantifier_rejected(self):
        with pytest.raises(FormulaError):
            MExists((), QF(atom("R", "a")))

    def test_empty_live_rejected(self):
        with pytest.raises(FormulaError):
            Live(())
