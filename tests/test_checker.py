"""The µ-calculus model checker over hand-built transition systems."""

import pytest

from repro.errors import VerificationError
from repro.mucalc import (
    AF, AG, EF, EG, EU, EX, AX, ModelChecker, check, extension, parse_mu)
from repro.mucalc.ast import Diamond, MExists, MOr, Mu, PredVar, QF
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem


@pytest.fixture
def line():
    """s0 -> s1 -> s2 (self-loop), values appear and disappear."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, "s0", name="line")
    ts.add_state("s0", Instance([fact("P", "a")]))
    ts.add_state("s1", Instance([fact("P", "a"), fact("Q", "b")]))
    ts.add_state("s2", Instance([fact("Q", "b")]))
    ts.add_edge("s0", "s1")
    ts.add_edge("s1", "s2")
    ts.add_edge("s2", "s2")
    return ts


@pytest.fixture
def diamond_ts():
    """Branching: s0 -> {left, right}; only left reaches goal."""
    schema = DatabaseSchema.of("G/0", "N/0")
    ts = TransitionSystem(schema, "s0", name="branch")
    ts.add_state("s0", Instance([fact("N")]))
    ts.add_state("left", Instance([fact("N")]))
    ts.add_state("right", Instance([fact("N")]))
    ts.add_state("goal", Instance([fact("G")]))
    ts.add_edge("s0", "left")
    ts.add_edge("s0", "right")
    ts.add_edge("left", "goal")
    ts.add_edge("right", "right")
    ts.add_edge("goal", "goal")
    return ts


class TestLocalOperators:
    def test_query_leaf(self, line):
        assert extension(line, parse_mu("P('a')")) == {"s0", "s1"}

    def test_live(self, line):
        assert extension(line, parse_mu("live('a')")) == {"s0", "s1"}
        assert extension(line, parse_mu("live('a') & live('b')")) == {"s1"}

    def test_negation(self, line):
        assert extension(line, parse_mu("~P('a')")) == {"s2"}

    def test_diamond_box(self, line):
        assert extension(line, parse_mu("<-> Q('b')")) == {"s0", "s1", "s2"}
        assert extension(line, parse_mu("[-] Q('b')")) == {"s0", "s1", "s2"}
        assert extension(line, parse_mu("<-> P('a')")) == {"s0"}

    def test_exists_over_ts_values(self, line):
        # E x. Q(x) ranges over all values of the TS.
        assert extension(line, parse_mu("E x. Q(x)")) == {"s1", "s2"}

    def test_exists_live_restricts(self, line):
        formula = parse_mu("E x. live(x) & P(x) & Q(x)")
        assert extension(line, formula) == set()

    def test_forall(self, line):
        formula = parse_mu("A x. (live(x) -> (P(x) | Q(x)))")
        assert extension(line, formula) == {"s0", "s1", "s2"}


class TestFixpoints:
    def test_ef(self, diamond_ts):
        states = extension(diamond_ts, EF(parse_mu("G()")))
        assert states == {"s0", "left", "goal"}

    def test_af(self, diamond_ts):
        # right branch loops forever in N: AF G fails at s0.
        states = extension(diamond_ts, AF(parse_mu("G()")))
        assert states == {"left", "goal"}

    def test_eg(self, diamond_ts):
        # left's only run goes through goal (not N), so left drops out.
        states = extension(diamond_ts, EG(parse_mu("N()")))
        assert states == {"s0", "right"}

    def test_ag(self, diamond_ts):
        assert extension(diamond_ts, AG(parse_mu("N()"))) == {"right"}

    def test_eu(self, diamond_ts):
        states = extension(diamond_ts,
                           EU(parse_mu("N()"), parse_mu("G()")))
        assert states == {"s0", "left", "goal"}

    def test_ex_ax(self, diamond_ts):
        assert extension(diamond_ts, EX(parse_mu("G()"))) == {"left", "goal"}
        assert extension(diamond_ts, AX(parse_mu("G()"))) == {"left", "goal"}

    def test_nested_fixpoints(self, diamond_ts):
        # Infinitely often reachable goal: nu X. mu Y. ((G & <->X) | <->Y).
        formula = parse_mu("nu X. mu Y. ((G() & <-> X) | <-> Y)")
        assert extension(diamond_ts, formula) == {"s0", "left", "goal"}

    def test_fixpoint_unfolding_equivalence(self, diamond_ts):
        # mu Z. Phi == Phi[Z -> mu Z. Phi]
        goal = parse_mu("G()")
        fixpoint = Mu("Z", MOr.of(goal, Diamond(PredVar("Z"))))
        unfolded = MOr.of(goal, Diamond(fixpoint))
        assert extension(diamond_ts, fixpoint) == \
            extension(diamond_ts, unfolded)


class TestQuantificationAcrossStates:
    def test_example_31_formula(self, line):
        # There are >= 2 distinct values eventually in some state's P or Q.
        formula = parse_mu(
            "E x, y. x != y & (mu Z. ((P(x) | Q(x)) | <-> Z)) "
            "& (mu W. ((P(y) | Q(y)) | <-> W))")
        assert check(line, formula)

    def test_value_persistence_distinction(self, line):
        # muLA-style: a eventually disappears but can still be referenced.
        formula = parse_mu("E x. live(x) & P(x) & <-> <-> ~live(x)")
        assert check(line, formula)
        # muLP-style guard: requires persistence, fails at the same depth.
        guarded = parse_mu(
            "E x. live(x) & P(x) & <-> (live(x) & <-> (live(x) & ~live(x)))")
        assert not check(line, guarded)


class TestErrors:
    def test_free_pred_var_rejected(self, line):
        with pytest.raises(VerificationError):
            check(line, PredVar("Z"))

    def test_unbound_ivar_rejected(self, line):
        from repro.fol import atom
        from repro.relational.values import Var

        with pytest.raises(VerificationError):
            check(line, QF(atom("P", Var("x"))))

    def test_valuation_supplied(self, line):
        from repro.fol import atom
        from repro.relational.values import Var

        checker = ModelChecker(line)
        states = checker.evaluate(QF(atom("P", Var("x"))), {Var("x"): "a"})
        assert states == {"s0", "s1"}
