"""Shared fixtures: gallery systems and their (session-cached) abstractions."""

from __future__ import annotations

import pytest

from repro.core import ServiceSemantics
from repro.gallery import (
    example_41, example_42, example_43, example_52, example_53,
    student_registry)
from repro.semantics import build_det_abstraction, rcycl


@pytest.fixture(scope="session")
def ex41():
    return example_41()


@pytest.fixture(scope="session")
def ex42():
    return example_42()


@pytest.fixture(scope="session")
def ex43_det():
    return example_43()


@pytest.fixture(scope="session")
def ex43_nondet():
    return example_43(ServiceSemantics.NONDETERMINISTIC)


@pytest.fixture(scope="session")
def ex52():
    return example_52()


@pytest.fixture(scope="session")
def ex53():
    return example_53()


@pytest.fixture(scope="session")
def students():
    return student_registry()


@pytest.fixture(scope="session")
def ex41_abstraction(ex41):
    return build_det_abstraction(ex41)


@pytest.fixture(scope="session")
def ex42_abstraction(ex42):
    return build_det_abstraction(ex42)


@pytest.fixture(scope="session")
def ex43_rcycl(ex43_nondet):
    return rcycl(ex43_nondet)


@pytest.fixture(scope="session")
def students_rcycl(students):
    return rcycl(students)
