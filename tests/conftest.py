"""Shared fixtures: gallery systems and their (session-cached) abstractions.

Also wires the ``slow_differential`` marker: the heavy seed sweep of
``tests/test_differential.py`` always runs by default (CI keeps it honest,
including a dedicated ``REPRO_WORKERS=4`` job step) but can be skipped
locally with ``--skip-slow-differential`` or
``REPRO_SKIP_SLOW_DIFFERENTIAL=1`` for quick iteration.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ServiceSemantics
from repro.gallery import (
    example_41, example_42, example_43, example_52, example_53,
    student_registry)
from repro.semantics import build_det_abstraction, rcycl


def pytest_addoption(parser):
    parser.addoption(
        "--skip-slow-differential", action="store_true", default=False,
        help="skip the heavy seeded differential sweep "
             "(also: REPRO_SKIP_SLOW_DIFFERENTIAL=1)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_differential: heavy seeded differential sweep (skippable "
        "locally via --skip-slow-differential, always run in CI)")


def pytest_collection_modifyitems(config, items):
    skip_requested = config.getoption("--skip-slow-differential") \
        or os.environ.get("REPRO_SKIP_SLOW_DIFFERENTIAL", "") not in ("", "0")
    if not skip_requested:
        return
    marker = pytest.mark.skip(
        reason="slow_differential skipped (--skip-slow-differential)")
    for item in items:
        if "slow_differential" in item.keywords:
            item.add_marker(marker)


@pytest.fixture(scope="session")
def ex41():
    return example_41()


@pytest.fixture(scope="session")
def ex42():
    return example_42()


@pytest.fixture(scope="session")
def ex43_det():
    return example_43()


@pytest.fixture(scope="session")
def ex43_nondet():
    return example_43(ServiceSemantics.NONDETERMINISTIC)


@pytest.fixture(scope="session")
def ex52():
    return example_52()


@pytest.fixture(scope="session")
def ex53():
    return example_53()


@pytest.fixture(scope="session")
def students():
    return student_registry()


@pytest.fixture(scope="session")
def ex41_abstraction(ex41):
    return build_det_abstraction(ex41)


@pytest.fixture(scope="session")
def ex42_abstraction(ex42):
    return build_det_abstraction(ex42)


@pytest.fixture(scope="session")
def ex43_rcycl(ex43_nondet):
    return rcycl(ex43_nondet)


@pytest.fixture(scope="session")
def students_rcycl(students):
    return rcycl(students)
