"""The encoding layer's invariants: term interning, snapshot replay, and
the consistency of :class:`CodedInstance`'s lazily-derived views.

A ``CodedInstance`` is immutable, so its derived structures (per-position
indexes, membership sets, columnar arrays, the coded active domain) are
materialized lazily and never invalidated — the invariant tested here is
that every view, materialized in any order and interleaved with the
others, describes exactly the sorted ``by_relation`` tuples. ``TermTable``
is append-only; ``snapshot``/``replay`` must reproduce code assignment
exactly even when the replaying table already holds a prefix and keeps
growing afterwards (the wire codec's cross-process contract).
"""

from __future__ import annotations

import pytest

from repro.relational import vector
from repro.relational.coding import CodedInstance, TermTable, UNBOUND
from repro.relational.values import ServiceCall
from repro.utils import value_sort_key

numpy_live = pytest.mark.skipif(
    not vector.numpy_available(),
    reason="columns() requires numpy (REPRO_NO_NUMPY or not installed)")


# ---------------------------------------------------------------------------
# TermTable
# ---------------------------------------------------------------------------

def grow(table: TermTable, stage: int) -> None:
    """Deterministic interning sequence, in stages (values, then calls
    whose args reference earlier codes, then nested calls)."""
    if stage == 0:
        for term in ("a", "b", 3, True, ("t", 1), "a"):
            table.code(term)
    elif stage == 1:
        table.code(ServiceCall("f", ("a",)))
        table.code(ServiceCall("g", ("b", 3)))
        table.code("c")
    else:
        table.code(ServiceCall("f", ("c",)))
        table.code(ServiceCall("h", ("a", "c")))
        table.code(4.5)


class TestTermTable:
    def test_codes_are_dense_and_stable(self):
        table = TermTable()
        grow(table, 0)
        assert table.code("a") == 0
        assert table.code("b") == 1
        # 1 and True compare equal, so 3 is the third distinct term.
        assert len(table) == 5
        assert [table.term(code) for code in range(len(table))] \
            == ["a", "b", 3, True, ("t", 1)]

    def test_snapshot_replay_roundtrip(self):
        source = TermTable()
        for stage in range(3):
            grow(source, stage)
        replica = TermTable()
        replica.replay(source.snapshot())
        assert len(replica) == len(source)
        for code in range(len(source)):
            assert replica.term(code) == source.term(code)
            assert replica.is_call(code) == source.is_call(code)
            assert replica.sort_key(code) == source.sort_key(code)

    def test_replay_under_interleaved_growth(self):
        """Replay onto a table already holding a prefix, with the source
        growing between snapshots — each replay must align, including the
        call payloads whose args reference earlier codes."""
        source = TermTable()
        replica = TermTable()
        for stage in range(3):
            grow(source, stage)
            replica.replay(source.snapshot())
            assert len(replica) == len(source)
            # The replica may also run the same constructor sequence
            # locally before the next snapshot arrives — same codes.
            grow(replica, stage)
            assert len(replica) == len(source)
        assert replica.snapshot() == source.snapshot()

    def test_replay_misalignment_raises(self):
        source = TermTable()
        grow(source, 0)
        diverged = TermTable()
        diverged.code("zzz")  # takes code 0, colliding with "a"
        with pytest.raises(ValueError, match="misaligned"):
            diverged.replay(source.snapshot())

    def test_sort_keys_cached_and_correct(self):
        table = TermTable()
        grow(table, 0)
        grow(table, 1)
        for code in range(len(table)):
            assert table.sort_key(code) == value_sort_key(table.term(code))
            assert table.sort_key(code) is table.sort_key(code)


# ---------------------------------------------------------------------------
# CodedInstance lazy views
# ---------------------------------------------------------------------------

def sample_coded() -> CodedInstance:
    # Unsorted, with duplicates across relations; relation 7 is binary,
    # relation 8 unary, relation 9 ternary.
    return CodedInstance({
        7: ((3, 1), (0, 2), (3, 1), (1, 1), (2, 0)),
        8: ((5,), (0,)),
        9: ((1, 2, 3),),
    })


class TestCodedInstanceViews:
    def test_tuples_sorted_and_deduplicated_views_agree(self):
        coded = sample_coded()
        assert coded.tuples(7) == ((0, 2), (1, 1), (2, 0), (3, 1), (3, 1))
        assert coded.tuples(42) == ()
        # index groups exactly the stored tuples, per position.
        for position in (0, 1):
            grouped = coded.index(7, position)
            flattened = sorted(
                terms for tuples in grouped.values() for terms in tuples)
            assert flattened == sorted(coded.tuples(7))
            for code, tuples in grouped.items():
                assert all(terms[position] == code for terms in tuples)
        # has() agrees with membership in the stored tuples.
        assert coded.has(7, (2, 0))
        assert not coded.has(7, (0, 3))
        assert not coded.has(42, ())

    def test_build_order_invariance(self):
        shuffled = CodedInstance({
            7: ((1, 1), (3, 1), (2, 0), (3, 1), (0, 2)),
            9: ((1, 2, 3),),
            8: ((0,), (5,)),
        })
        baseline = sample_coded()
        assert shuffled.by_relation == baseline.by_relation
        assert shuffled.fact_set() == baseline.fact_set()

    def test_adom_collects_call_args_not_calls(self):
        table = TermTable()
        a, b = table.code("a"), table.code("b")
        call = table.code(ServiceCall("f", ("a",)))
        coded = CodedInstance({0: ((a, call), (b, b))})
        assert coded.adom_codes(table) == frozenset({a, b})

    @numpy_live
    def test_columns_mirror_tuples(self):
        np = vector.require_numpy()
        coded = sample_coded()
        for relation in (7, 8, 9):
            matrix = coded.columns(relation)
            assert matrix.dtype == np.int64
            assert list(map(tuple, matrix.tolist())) \
                == list(coded.tuples(relation))
        assert coded.columns(42) is None

    @numpy_live
    def test_columns_cached_per_relation(self):
        coded = sample_coded()
        assert coded.columns(7) is coded.columns(7)

    @numpy_live
    def test_interleaved_materialization_stays_consistent(self):
        """Materialize the views in mixed orders; all must keep describing
        the same tuples (none caches a partial view of another)."""
        for order in ("columns-first", "index-first"):
            coded = sample_coded()
            if order == "columns-first":
                columns = coded.columns(7)
                index = coded.index(7, 0)
                _ = coded.has(7, (1, 1))
            else:
                index = coded.index(7, 0)
                _ = coded.has(7, (1, 1))
                columns = coded.columns(7)
            assert list(map(tuple, columns.tolist())) \
                == list(coded.tuples(7))
            assert sorted(
                terms for tuples in index.values() for terms in tuples) \
                == sorted(coded.tuples(7))
            assert coded.vector_cache() is coded.vector_cache()

    def test_unbound_sentinel_below_all_codes(self):
        # The vector backend's +1 key shift and the compiled plans both
        # rely on UNBOUND sitting strictly below every real code.
        assert UNBOUND == -1
        table = TermTable()
        grow(table, 0)
        assert all(code > UNBOUND for code in range(len(table)))
