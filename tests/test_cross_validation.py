"""End-to-end cross-validation properties.

The central soundness claims of the paper, checked empirically on random
weakly-acyclic DCDSs:

* the abstract transition system is history-preserving bounded-bisimilar to
  the concrete system restricted to a finite value pool (Theorem 4.3's
  operational content at finite depth);
* µLA verification agrees between the direct checker and the PROP()
  propositional route (Theorem 4.4);
* verified formulas and their negations partition as expected.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bisim import BisimMode, bounded_bisimilar
from repro.core import ServiceSemantics
from repro.mucalc import (
    ModelChecker, parse_mu, prop_check, propositionalize)
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, explore_concrete, rcycl
from repro.workloads import random_dcds

POOL = ["c0", "c1", Fresh(80), Fresh(81), Fresh(82)]


@given(st.integers(0, 40))
@settings(max_examples=15, deadline=None)
def test_abstraction_bounded_bisimilar_to_pool_concrete(seed):
    """Theorem 4.3 at finite depth, over random weakly acyclic DCDSs."""
    dcds = random_dcds(seed, n_relations=3, n_actions=1,
                       effects_per_action=2, shape="weakly-acyclic")
    abstraction = build_det_abstraction(dcds, max_states=30000)
    concrete = explore_concrete(dcds, POOL, depth=3, max_states=30000)
    assert bounded_bisimilar(concrete, abstraction, depth=2,
                             mode=BisimMode.HISTORY)


@given(st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_prop_translation_agrees_on_random_systems(seed):
    """Theorem 4.4 over random weakly acyclic DCDSs."""
    dcds = random_dcds(seed, n_relations=3, n_actions=1,
                       effects_per_action=2, shape="weakly-acyclic")
    ts = build_det_abstraction(dcds, max_states=30000)
    formulas = [
        "nu X. ((E x. live(x) & R0(x)) & [-] X)"
        if dcds.schema.arity("R0") == 1 else
        "nu X. ((E x, y. live(x) & live(y) & R0(x, y)) & [-] X)",
        "mu Z. (false | <-> Z)",
    ]
    checker = ModelChecker(ts)
    for text in formulas:
        formula = parse_mu(text)
        direct = checker.evaluate(formula)
        translated, labeling = propositionalize(formula, ts)
        assert prop_check(ts, translated, labeling) == direct


@given(st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_negation_partitions_states(seed):
    dcds = random_dcds(seed, n_relations=3, n_actions=1,
                       effects_per_action=2, shape="weakly-acyclic")
    ts = build_det_abstraction(dcds, max_states=30000)
    checker = ModelChecker(ts)
    formula = parse_mu("mu Z. ((E x. live(x) & R1(x)) | <-> Z)"
                       if dcds.schema.arity("R1") == 1 else
                       "mu Z. ((E x, y. live(x) & live(y) & R1(x, y)) "
                       "| <-> Z)")
    positive = checker.evaluate(formula)
    from repro.mucalc.ast import MNot

    negative = checker.evaluate(MNot(formula))
    assert positive | negative == ts.states
    assert not (positive & negative)


@given(st.integers(0, 30))
@settings(max_examples=8, deadline=None)
def test_gr_acyclic_random_systems_rcycl_terminates(seed):
    """Theorem 5.6: GR-acyclic implies state-bounded, so RCYCL saturates."""
    dcds = random_dcds(seed, n_relations=4, n_actions=2,
                       effects_per_action=2, shape="gr-acyclic",
                       semantics=ServiceSemantics.NONDETERMINISTIC)
    ts = rcycl(dcds, max_states=30000, max_iterations=500000)
    assert len(ts) >= 1
