"""Isomorphism quotient (Lemma C.2 applied)."""

import pytest

from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem, isomorphism_quotient


@pytest.fixture
def redundant_ts():
    """Two isomorphic branches that should merge."""
    schema = DatabaseSchema.of("R/1")
    ts = TransitionSystem(schema, "s0")
    ts.add_state("s0", Instance([fact("R", "a")]))
    ts.add_state("s1", Instance([fact("R", "u")]))
    ts.add_state("s2", Instance([fact("R", "v")]))
    ts.add_edge("s0", "s1")
    ts.add_edge("s0", "s2")
    ts.add_edge("s1", "s1")
    ts.add_edge("s2", "s2")
    return ts


class TestQuotient:
    def test_merges_isomorphic_states(self, redundant_ts):
        quotient, mapping = isomorphism_quotient(redundant_ts, fixed={"a"})
        assert len(quotient) == 2
        assert mapping["s1"] == mapping["s2"]
        assert mapping["s0"] != mapping["s1"]

    def test_fixed_values_prevent_merging(self, redundant_ts):
        quotient, mapping = isomorphism_quotient(redundant_ts,
                                                 fixed={"a", "u", "v"})
        assert len(quotient) == 3

    def test_edges_preserved(self, redundant_ts):
        quotient, mapping = isomorphism_quotient(redundant_ts, fixed={"a"})
        initial = mapping["s0"]
        merged = mapping["s1"]
        assert quotient.successors(initial) == {merged}
        assert quotient.successors(merged) == {merged}

    def test_databases_are_canonical(self, redundant_ts):
        quotient, mapping = isomorphism_quotient(redundant_ts, fixed={"a"})
        merged_db = quotient.db(mapping["s1"])
        from repro.relational.values import Fresh

        assert merged_db == Instance([fact("R", Fresh(0))])

    def test_truncation_marks_carry_over(self, redundant_ts):
        redundant_ts.mark_truncated("s2")
        quotient, mapping = isomorphism_quotient(redundant_ts, fixed={"a"})
        assert mapping["s2"] in quotient.truncated_states

    def test_idempotent(self, redundant_ts):
        quotient, _ = isomorphism_quotient(redundant_ts, fixed={"a"})
        again, _ = isomorphism_quotient(quotient, fixed={"a"})
        assert len(again) == len(quotient)
