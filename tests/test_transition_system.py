"""The generic transition-system container."""

import pytest

from repro.errors import ReproError
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem


@pytest.fixture
def ts():
    schema = DatabaseSchema.of("R/1")
    system = TransitionSystem(schema, "s0", name="toy")
    system.add_state("s0", Instance([fact("R", "a")]))
    system.add_state("s1", Instance([fact("R", "b")]))
    system.add_state("s2", Instance.empty())
    system.add_edge("s0", "s1", "go")
    system.add_edge("s1", "s2")
    system.add_edge("s2", "s2")
    return system


class TestConstruction:
    def test_add_state_idempotent(self, ts):
        ts.add_state("s0", Instance([fact("R", "a")]))
        assert len(ts) == 3

    def test_add_state_conflicting_db(self, ts):
        with pytest.raises(ReproError):
            ts.add_state("s0", Instance([fact("R", "zzz")]))

    def test_add_edge_requires_states(self, ts):
        with pytest.raises(ReproError):
            ts.add_edge("s0", "unknown")

    def test_schema_validated(self, ts):
        with pytest.raises(Exception):
            ts.add_state("bad", Instance([fact("S", "a")]))


class TestQueries:
    def test_successors(self, ts):
        assert ts.successors("s0") == {"s1"}
        assert ts.successors("s2") == {"s2"}

    def test_labeled_edges(self, ts):
        assert ("go", "s1") in ts.labeled_edges("s0")

    def test_edge_count(self, ts):
        assert ts.edge_count() == 3

    def test_values(self, ts):
        assert ts.values() == frozenset({"a", "b"})

    def test_reachable(self, ts):
        assert ts.reachable_from() == {"s0", "s1", "s2"}
        assert ts.reachable_from("s1") == {"s1", "s2"}

    def test_total(self, ts):
        assert ts.is_total()
        ts.add_state("dead", Instance.empty())
        assert not ts.is_total()

    def test_depth_levels(self, ts):
        levels = ts.depth_levels()
        assert levels[0] == frozenset({"s0"})
        assert levels[1] == frozenset({"s1"})
        assert levels[2] == frozenset({"s2"})

    def test_stats(self, ts):
        stats = ts.stats()
        assert stats["states"] == 3
        assert stats["edges"] == 3
        assert stats["max_adom"] == 1

    def test_pretty_contains_initial_marker(self, ts):
        rendered = ts.pretty()
        assert "toy" in rendered
        assert "*" in rendered


class TestRelabel:
    def test_relabel(self, ts):
        renamed = ts.relabel(lambda state: f"x-{state}")
        assert renamed.initial == "x-s0"
        assert renamed.successors("x-s0") == {"x-s1"}
        assert renamed.db("x-s1") == ts.db("s1")

    def test_relabel_requires_injective(self, ts):
        with pytest.raises(ReproError):
            ts.relabel(lambda state: "same")
