"""The out-of-core storage layer (:mod:`repro.engine.store`).

Unit coverage for the pieces — framed records, the shared memory budget,
the budgeted LRU dict, the canonical state codec, the paged store, and
the store-backed transition system — plus end-to-end checks that
``verify(memory_budget=...)`` / ``explore_concrete(memory_budget=...)``
stay bit-identical to the in-RAM builds. The cross-tier sweep (workers,
checkpoints, kill switches on every differential case) lives in
``tests/test_differential.py``.
"""

from __future__ import annotations

import io

import pytest

from repro import env, verify
from repro.engine import (
    BudgetedDict, DetAbstractionGenerator, Explorer, MemoryBudget,
    PagedStore, RamStore, StoredTransitionSystem, resolve_memory_budget)
from repro.engine import frames
from repro.engine.store import (
    DEFAULT_SHARES, ENFORCE_FRACTION, HOT_BYTES_FLOOR, StateCodec,
    approx_nbytes)
from repro.errors import ReproError, WireIntegrityError
from repro.mucalc import parse_mu
from repro.relational.kernel import kernel_for
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, explore_concrete
from repro.workloads import conveyor_dcds

TIGHT = 96 * 1024


def fingerprint(ts):
    """Order-insensitive bit-identity digest of a transition system."""
    return (ts.stats(),
            tuple(sorted(repr(state) for state in ts._db)),
            tuple(sorted((repr(a), label, repr(b))
                         for a in ts._edges for label, b in ts._edges[a])),
            tuple(sorted(repr(state) for state in ts.truncated_states)))


def kernel_or_skip(dcds):
    kernel = kernel_for(dcds)
    if kernel is None:
        pytest.skip("relational kernel disabled (REPRO_NO_KERNEL)")
    return kernel


def store_mode_or_skip():
    if env.spill_disabled():
        pytest.skip("paged store disabled (REPRO_NO_SPILL)")


# ---------------------------------------------------------------------------
# Framed records
# ---------------------------------------------------------------------------

class TestFrames:
    MESSAGE = ("d", ((1, (2, 3)), (4, ())), {"k": [5, 6]}, ["defs"])

    def test_round_trip(self):
        payload = frames.dumps(self.MESSAGE)
        assert frames.loads(payload) == self.MESSAGE

    def test_deterministic_for_equal_input(self):
        assert frames.dumps(self.MESSAGE) == frames.dumps(self.MESSAGE)

    def test_corrupted_body_is_structured(self):
        payload = bytearray(frames.dumps(self.MESSAGE))
        payload[-1] ^= 0xFF
        with pytest.raises(WireIntegrityError):
            frames.loads(bytes(payload))

    def test_truncated_frame(self):
        payload = frames.dumps(self.MESSAGE)
        with pytest.raises(WireIntegrityError):
            frames.loads(payload[:-3])
        with pytest.raises(WireIntegrityError):
            frames.loads(payload[:frames.FRAME_OVERHEAD - 1])

    def test_bad_magic(self):
        payload = frames.dumps(self.MESSAGE)
        with pytest.raises(WireIntegrityError):
            frames.loads(b"XX1" + payload[3:])

    def test_file_records_bounded_by_region(self):
        handle = io.BytesIO()
        written = frames.write_record(handle, self.MESSAGE)
        handle.seek(0)
        record, consumed = frames.read_record(handle, written)
        assert record == self.MESSAGE and consumed == written
        handle.seek(0)
        with pytest.raises(WireIntegrityError):
            frames.read_record(handle, written - 1)


# ---------------------------------------------------------------------------
# Budget accounting
# ---------------------------------------------------------------------------

class TestApproxNbytes:
    def test_scalar_floors(self):
        assert approx_nbytes(None) == 8
        assert approx_nbytes(7) == 32
        assert approx_nbytes(1.5) == 24

    def test_strings_and_bytes_scale_with_length(self):
        assert approx_nbytes("x" * 100) > approx_nbytes("x")
        assert approx_nbytes(b"x" * 100) > approx_nbytes(b"x")

    def test_containers_extrapolate(self):
        small = approx_nbytes(list(range(10)))
        large = approx_nbytes(list(range(1000)))
        assert large > 50 * small  # sampled, but proportional
        assert approx_nbytes({i: i for i in range(100)}) \
            > approx_nbytes({1: 1})


class TestMemoryBudget:
    def test_limits_follow_shares(self):
        # Shares divide the enforcement target (ENFORCE_FRACTION of the
        # stated cap) — the reserved headroom absorbs allocation slack
        # the structural estimator cannot see.
        budget = MemoryBudget(1000, shares={"a": 0.25, "b": 0.75})
        assert budget.enforce_total == int(1000 * ENFORCE_FRACTION)
        assert budget.limit("a") == int(budget.enforce_total * 0.25)
        assert budget.limit("b") == int(budget.enforce_total * 0.75)
        assert budget.limit("unknown") == 0

    def test_charge_release_over(self):
        budget = MemoryBudget(1000, shares={"a": 0.5})
        budget.charge("a", 400)
        assert not budget.over("a")
        budget.charge("a", 200)
        assert budget.over("a")
        budget.release("a", 300)
        assert not budget.over("a")

    def test_high_water_is_the_peak_of_the_sum(self):
        budget = MemoryBudget(1000, shares={"a": 0.5, "b": 0.5})
        budget.charge("a", 300)
        budget.charge("b", 500)
        budget.release("a", 300)
        budget.charge("a", 100)
        assert budget.high_water == 800

    def test_stats_dict(self):
        budget = MemoryBudget(1000, shares={"a": 1.0})
        budget.charge("a", 10)
        budget.note_eviction("a")
        stats = budget.stats_dict()
        assert stats["budget"] == 1000
        assert stats["charged"]["a"] == 10
        assert stats["evictions"]["a"] == 1
        assert stats["budget_high_water"] == 10


class TestBudgetedDict:
    def fresh(self, total=1000, cost=300):
        budget = MemoryBudget(total, shares={"m": 1.0})
        return budget, BudgetedDict(budget, "m",
                                    cost_fn=lambda key, value: cost)

    def test_mapping_contract(self):
        _, cache = self.fresh()
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1 and "b" in cache and len(cache) == 2
        assert sorted(cache) == ["a", "b"]
        del cache["a"]
        assert "a" not in cache and len(cache) == 1

    def test_sheds_least_recently_used(self):
        # limit = 800 (enforcement target of 1000); shedding happens
        # *before* the incoming entry is charged, so room for it is made
        # eagerly and the charged level never overshoots the target.
        budget, cache = self.fresh()
        for key in "abcd":
            cache[key] = key
        assert list(cache) == ["c", "d"]
        assert budget.evictions["m"] == 2
        assert budget.charged["m"] == 600
        assert budget.high_water <= budget.enforce_total

    def test_lookup_refreshes_recency(self):
        _, cache = self.fresh(cost=250)  # 3 x 250 fits the 800 target
        for key in "abc":
            cache[key] = key
        cache["a"]  # past half-pressure, so this refreshes recency
        cache["d"] = "d"  # ... and "b" is the eviction victim
        assert list(cache) == ["c", "a", "d"]

    def test_recency_gating_below_pressure(self):
        # Far under half the account's limit nothing is close to
        # evicting, so hits skip the LRU reorder (pure overhead there)
        # and insertion order stands.
        _, cache = self.fresh(total=100_000)
        for key in "abc":
            cache[key] = key
        cache["a"]
        assert list(cache) == ["a", "b", "c"]

    def test_never_sheds_below_one_entry(self):
        _, cache = self.fresh(total=10, cost=300)  # every entry is over
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3
        # Pre-shed keeps one survivor plus the incoming entry — the
        # cache never sheds itself empty.
        assert list(cache) == ["b", "c"]

    def test_overwrite_releases_the_old_charge(self):
        budget, cache = self.fresh()
        cache["a"] = 1
        cache["a"] = 2
        assert budget.charged["m"] == 300 and cache["a"] == 2

    def test_unwrap_returns_plain_dict_and_releases(self):
        budget, cache = self.fresh()
        cache["a"] = 1
        cache["b"] = 2
        found = cache.unwrap()
        assert found == {"a": 1, "b": 2} and type(found) is dict
        assert budget.charged["m"] == 0 and len(cache) == 0

    def test_seeded_from_existing_data(self):
        budget = MemoryBudget(10_000, shares={"m": 1.0})
        cache = BudgetedDict(budget, "m", data={"a": 1, "b": 2})
        assert dict(cache) == {"a": 1, "b": 2}
        assert budget.charged["m"] > 0


# ---------------------------------------------------------------------------
# The canonical state codec
# ---------------------------------------------------------------------------

def explored_states(dcds, max_states=200, max_depth=3):
    ts = Explorer(dcds.schema, max_states=max_states,
                  max_depth=max_depth).run(
        DetAbstractionGenerator(dcds)).transition_system
    return sorted(ts._db, key=repr)


class TestStateCodec:
    def test_round_trip_equality(self):
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        codec = StateCodec(kernel, len(kernel.table))
        for state in explored_states(dcds):
            assert codec.decode_state(codec.encode_state(state)) == state

    def test_frames_are_canonical_across_independent_kernels(self):
        # Two builds of the same specification, each with its own kernel
        # whose term-table history differs from the other's — equal
        # states must still produce byte-identical frames, because the
        # paged store's digest dedup and the checkpoint adopt path *are*
        # state equality only under that guarantee.
        frames_by_build = []
        for _ in range(2):
            dcds = conveyor_dcds(1)
            kernel = kernel_or_skip(dcds)
            codec = StateCodec(kernel, len(kernel.table))
            frames_by_build.append(
                [codec.encode_state(state)
                 for state in explored_states(dcds)])
        assert frames_by_build[0] == frames_by_build[1]

    def test_post_snapshot_terms_ride_as_defs(self):
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        codec = StateCodec(kernel, len(kernel.table))
        states = explored_states(dcds)
        decoded = [codec.decode_state(codec.encode_state(state))
                   for state in states]
        # A frozen-snapshot codec in a *fresh* process would resolve the
        # same defs; here we at least pin that every frame decodes
        # without consulting terms minted after the snapshot.
        assert decoded == states


# ---------------------------------------------------------------------------
# The stores
# ---------------------------------------------------------------------------

class TestRamStore:
    def test_dense_ids_in_discovery_order(self):
        store = RamStore()
        assert store.intern("s0") == (0, True)
        assert store.intern("s1") == (1, True)
        assert store.intern("s0") == (0, False)
        assert store.fetch(1) == "s1" and len(store) == 2
        assert store.contains("s0") and not store.contains("s2")
        assert store.stats_dict()["backend"] == "ram"


class TestPagedStore:
    def build(self, page_bytes=None, shares=None):
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        budget = MemoryBudget(TIGHT, shares=shares)
        kwargs = {} if page_bytes is None else {"page_bytes": page_bytes}
        return PagedStore(kernel, budget, **kwargs), \
            explored_states(dcds), budget

    def test_intern_dedup_and_fetch(self):
        store, states, _ = self.build()
        sids = {}
        for state in states:
            sid, is_new = store.intern(state)
            assert is_new and sid == len(sids)
            sids[sid] = state
        for state in states:
            sid, is_new = store.intern(state)
            assert not is_new and sids[sid] == state
        assert len(store) == len(states)
        assert store.dedup_checks == len(states)
        for sid, state in sids.items():
            assert store.fetch(sid) == state
            assert store.contains(state)

    def test_raw_frame_is_the_canonical_encoding(self):
        store, states, _ = self.build()
        for state in states[:5]:
            sid, _ = store.intern(state)
            assert store.raw_frame(sid) == store.codec.encode_state(state)

    def test_eviction_and_rehydration(self):
        # Shrink the hot share to a couple of entries so interning the
        # whole run must evict, and early fetches must rehydrate.
        # (Shares must be set at budget construction — the store caches
        # its hot limit.)
        shares = dict(DEFAULT_SHARES)
        shares["hot"] = HOT_BYTES_FLOOR * 2 / TIGHT
        store, states, budget = self.build(shares=shares)
        sids = [store.intern(state)[0] for state in states]
        assert budget.evictions["hot"] > 0
        assert store.hot_count() < len(states)
        before = store.rehydrations
        assert store.fetch(sids[0]) == states[0]
        assert store.rehydrations == before + 1

    def test_page_rotation(self):
        store, states, _ = self.build(page_bytes=256)
        for state in states:
            store.intern(state)
        # Frames are written lazily; pulling the raw bytes (what the
        # checkpoint layer does) forces every frame onto a page.
        for sid in range(len(store)):
            store.raw_frame(sid)
        stats = store.stats_dict()
        assert stats["pages_written"] > 1
        assert stats["bytes_written"] > 256
        assert stats["unflushed_states"] == 0
        # Reads from rotated (mmap) pages still return exact frames.
        for sid in range(len(store)):
            assert store.fetch(sid) == states[sid]

    def test_frames_write_lazily(self):
        """No eviction pressure, no checkpoint read => no page writes;
        budget pressure spills exactly the evicted states."""
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        states = explored_states(dcds)
        ample = PagedStore(kernel, MemoryBudget(1 << 30))
        for state in states:
            ample.intern(state)
        stats = ample.stats_dict()
        assert stats["bytes_written"] == 0
        assert stats["unflushed_states"] == len(states)
        # raw_frame flushes on demand and returns the canonical frame.
        assert ample.raw_frame(0) == ample.codec.encode_state(states[0])
        assert ample.stats_dict()["unflushed_states"] == len(states) - 1

        shares = dict(DEFAULT_SHARES)
        shares["hot"] = HOT_BYTES_FLOOR * 2 / TIGHT
        tight = PagedStore(kernel, MemoryBudget(TIGHT, shares=shares))
        for state in states:
            tight.intern(state)
        stats = tight.stats_dict()
        assert stats["bytes_written"] > 0
        assert stats["unflushed_states"] == stats["hot_states"]

    def test_adopt_frame_round_trip(self):
        store, states, _ = self.build()
        frames_in = [store.codec.encode_state(state) for state in states]
        for position, frame in enumerate(frames_in):
            sid, is_new = store.adopt_frame(frame)
            assert is_new and sid == position
        assert store.adopt_frame(frames_in[0]) == (0, False)
        for position, state in enumerate(states):
            assert store.fetch(position) == state

    def test_rebase_snapshot_guard(self):
        store, states, _ = self.build()
        store.rebase_snapshot(store.codec.snapshot_size)  # empty: fine
        store.intern(states[0])
        with pytest.raises(ReproError):
            store.rebase_snapshot(1)

    def test_stats_dict_shape(self):
        store, states, _ = self.build()
        store.intern(states[0])
        stats = store.stats_dict()
        for key in ("backend", "states", "pages_written", "bytes_written",
                    "page_reads", "bytes_read", "rehydrations",
                    "dedup_checks", "hot_states", "frontier_cold_peak",
                    "budget", "budget_high_water", "charged", "evictions"):
            assert key in stats, key
        assert stats["backend"] == "paged" and stats["states"] == 1


# ---------------------------------------------------------------------------
# resolve_memory_budget and the kill switch
# ---------------------------------------------------------------------------

class TestResolveMemoryBudget:
    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SPILL", raising=False)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1m")
        assert resolve_memory_budget(2048) == 2048

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SPILL", raising=False)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "64k")
        assert resolve_memory_budget(None) == 64 << 10
        monkeypatch.delenv("REPRO_MEMORY_BUDGET")
        assert resolve_memory_budget(None) is None

    def test_kill_switch_vetoes_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SPILL", "1")
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "64k")
        assert resolve_memory_budget(None) is None
        assert resolve_memory_budget(2048) is None

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_raises(self, monkeypatch, bad):
        monkeypatch.delenv("REPRO_NO_SPILL", raising=False)
        with pytest.raises(ReproError):
            resolve_memory_budget(bad)


class TestKernelMemoBudget:
    def test_attach_detach_idempotent(self):
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        budget = MemoryBudget(TIGHT)
        try:
            kernel.attach_memo_budget(budget)
            assert isinstance(kernel._eval_memo, BudgetedDict)
            kernel.attach_memo_budget(budget)  # re-attach: still wrapped
            assert isinstance(kernel._eval_memo, BudgetedDict)
        finally:
            kernel.detach_memo_budget()
        assert type(kernel._eval_memo) is dict
        kernel.detach_memo_budget()  # second detach is a no-op
        assert type(kernel._eval_memo) is dict

    def test_detached_kernel_still_explores_identically(self):
        dcds = conveyor_dcds(1)
        kernel = kernel_or_skip(dcds)
        baseline = explored_states(dcds)
        kernel.attach_memo_budget(MemoryBudget(TIGHT))
        try:
            budgeted = explored_states(dcds)
        finally:
            kernel.detach_memo_budget()
        after = explored_states(dcds)
        reprs = [repr(state) for state in baseline]
        assert [repr(state) for state in budgeted] == reprs
        assert [repr(state) for state in after] == reprs


# ---------------------------------------------------------------------------
# The store-backed transition system
# ---------------------------------------------------------------------------

class TestStoredTransitionSystem:
    def builds(self):
        store_mode_or_skip()
        dcds = conveyor_dcds(1)
        kernel_or_skip(dcds)
        baseline = Explorer(dcds.schema, max_depth=3).run(
            DetAbstractionGenerator(dcds)).transition_system
        budgeted = Explorer(dcds.schema, max_depth=3,
                            memory_budget=TIGHT).run(
            DetAbstractionGenerator(dcds)).transition_system
        assert isinstance(budgeted, StoredTransitionSystem)
        return baseline, budgeted

    def test_id_level_accessors_answer_without_materializing(self):
        baseline, budgeted = self.builds()
        assert not budgeted.materialized
        assert len(budgeted) == len(baseline)
        assert budgeted.edge_count() == baseline.edge_count()
        assert budgeted.is_total() == baseline.is_total()
        assert budgeted.values() == baseline.values()
        assert budgeted.max_state_size() == baseline.max_state_size()
        assert budgeted.stats_truncated() == len(baseline.truncated_states)
        assert budgeted.stats() == baseline.stats()
        some_state = budgeted.fetch(0)
        assert some_state in budgeted
        assert budgeted.db(some_state) == baseline.db(some_state)
        assert not budgeted.materialized  # none of the above inflated it

    def test_materialization_is_bit_identical(self):
        baseline, budgeted = self.builds()
        assert not budgeted.materialized
        assert fingerprint(budgeted) == fingerprint(baseline)  # touches _db
        assert budgeted.materialized
        assert budgeted.stats() == baseline.stats()  # object-level path now


# ---------------------------------------------------------------------------
# End-to-end: the public APIs under a budget
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_verify_under_budget_matches_unbudgeted(self, ex41):
        store_mode_or_skip()
        kernel_or_skip(ex41)
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        baseline = verify(ex41, formula)
        budgeted = verify(ex41, formula, memory_budget=TIGHT)
        assert budgeted.holds == baseline.holds
        store_stats = budgeted.abstraction_stats.get("store")
        assert store_stats and store_stats["backend"] == "paged"
        assert budgeted.abstraction_stats["states"] \
            == baseline.abstraction_stats["states"]
        assert budgeted.abstraction_stats["edges"] \
            == baseline.abstraction_stats["edges"]

    def test_verify_keep_ts_false_reads_stats_without_materializing(
            self, ex41):
        store_mode_or_skip()
        kernel_or_skip(ex41)
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        report = verify(ex41, formula, memory_budget=TIGHT, keep_ts=False)
        assert report.transition_system is None
        assert report.holds is True
        assert report.abstraction_stats.get("store")

    def test_verify_on_the_fly_under_budget(self, ex41):
        store_mode_or_skip()
        kernel_or_skip(ex41)
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        offline = verify(ex41, formula)
        fused = verify(ex41, formula, on_the_fly=True, memory_budget=TIGHT)
        assert fused.holds == offline.holds

    def test_build_det_abstraction_under_budget(self, ex41):
        store_mode_or_skip()
        kernel_or_skip(ex41)
        baseline = build_det_abstraction(ex41)
        budgeted = build_det_abstraction(ex41, memory_budget=TIGHT)
        assert budgeted.exploration_stats.get("store")
        assert fingerprint(budgeted) == fingerprint(baseline)

    def test_explore_concrete_under_budget(self, ex41):
        store_mode_or_skip()
        kernel_or_skip(ex41)
        pool = ["a", Fresh(30), Fresh(31)]
        baseline = explore_concrete(ex41, pool, depth=2)
        budgeted = explore_concrete(ex41, pool, depth=2,
                                    memory_budget=TIGHT)
        assert fingerprint(budgeted) == fingerprint(baseline)

    def test_no_spill_forces_the_plain_path(self, ex41, monkeypatch):
        kernel_or_skip(ex41)
        monkeypatch.setenv("REPRO_NO_SPILL", "1")
        ts = build_det_abstraction(ex41, memory_budget=TIGHT)
        assert not isinstance(ts, StoredTransitionSystem)
        assert ts.exploration_stats.get("store") is None
