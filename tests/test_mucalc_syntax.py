"""µ-calculus fragments, monotonicity, and the unfolding proviso."""

import pytest

from repro.errors import FragmentError, MonotonicityError
from repro.mucalc import (
    Box, Diamond, Fragment, Live, MAnd, MNot, MOr, Mu, Nu, PredVar, QF,
    box_live, check_monotone, classify, diamond_live, exists_live,
    forall_live, free_ivars_unfolded, is_in_fragment, live, parse_mu,
    require_fragment)
from repro.fol import atom
from repro.relational.values import Var

X = Var("x")


class TestMonotonicity:
    def test_positive_occurrence_ok(self):
        check_monotone(parse_mu("mu Z. (R('a') | <-> Z)"))

    def test_negative_occurrence_rejected(self):
        with pytest.raises(MonotonicityError):
            check_monotone(Mu("Z", MNot(PredVar("Z"))))

    def test_double_negation_ok(self):
        check_monotone(Mu("Z", MNot(MNot(PredVar("Z")))))

    def test_negation_outside_binder_ok(self):
        check_monotone(MNot(Mu("Z", Diamond(PredVar("Z")))))

    def test_inner_binder_shadows(self):
        # The inner mu rebinds Z; its body occurrence is positive wrt the
        # inner binder even under the outer negation context.
        formula = Mu("Z", MOr.of(
            PredVar("Z"), MNot(Mu("Z", Diamond(PredVar("Z"))))))
        with pytest.raises(MonotonicityError):
            # ... but the outer Z under odd negation depth must be caught.
            check_monotone(Mu("W", MNot(PredVar("W"))))
        check_monotone(formula)


class TestFragments:
    def test_fragment_inclusion(self):
        assert Fragment.MU_L.includes(Fragment.MU_LP)
        assert Fragment.MU_LA.includes(Fragment.MU_LP)
        assert not Fragment.MU_LP.includes(Fragment.MU_LA)

    @pytest.mark.parametrize("text,expected", [
        ("mu Z. (R('a') | <-> Z)", Fragment.MU_LP),
        ("E x. live(x) & mu Z. (R(x) | <-> Z)", Fragment.MU_LA),
        ("E x. live(x) & mu Z. (R(x) | <-> (live(x) & Z))",
         Fragment.MU_LP),
        ("E x. mu Z. (R(x) | <-> Z)", Fragment.MU_L),
        ("A x. (live(x) -> R(x))", Fragment.MU_LP),
        ("A x. R(x)", Fragment.MU_L),
        ("nu X. ((E x. live(x) & P(x)) & [-] X)", Fragment.MU_LP),
    ])
    def test_classification(self, text, expected):
        assert classify(parse_mu(text)) is expected

    def test_example_32_is_muLA(self):
        formula = parse_mu(
            "nu X. ((A x. (live(x) & Stud(x) -> "
            "mu Y. ((E y. live(y) & Grad(x, y)) | <-> Y))) & [-] X)")
        assert classify(formula) is Fragment.MU_LA

    def test_example_33_is_muLP(self):
        formula = parse_mu(
            "nu X. ((A x. (live(x) & Stud(x) -> "
            "mu Y. ((E y. live(y) & Grad(x, y)) | <-> (live(x) & Y)))) "
            "& [-] X)")
        assert classify(formula) is Fragment.MU_LP

    def test_example_33_implication_variant_is_muLP(self):
        formula = parse_mu(
            "nu X. ((A x. (live(x) & Stud(x) -> "
            "mu Y. ((E y. live(y) & Grad(x, y)) | <-> (live(x) -> Y)))) "
            "& [-] X)")
        assert classify(formula) is Fragment.MU_LP

    def test_require_fragment(self):
        formula = parse_mu("E x. mu Z. (R(x) | <-> Z)")
        with pytest.raises(FragmentError):
            require_fragment(formula, Fragment.MU_LA)
        require_fragment(formula, Fragment.MU_L)

    def test_is_in_fragment(self):
        formula = parse_mu("E x. live(x) & mu Z. (R(x) | <-> Z)")
        assert is_in_fragment(formula, Fragment.MU_LA)
        assert is_in_fragment(formula, Fragment.MU_L)
        assert not is_in_fragment(formula, Fragment.MU_LP)


class TestUnfoldedFreeVars:
    def test_plain_free_vars(self):
        formula = QF(atom("R", X))
        assert free_ivars_unfolded(formula) == {X}

    def test_pred_var_contributes_binder_vars(self):
        # mu Z. (R(x) | <->Z): inside, Z stands for a formula with free x.
        inner_diamond = Diamond(PredVar("Z"))
        binder = Mu("Z", MOr.of(QF(atom("R", X)), inner_diamond))
        assert free_ivars_unfolded(binder) == {X}

    def test_quantifier_removes_vars(self):
        formula = parse_mu("E x. live(x) & R(x)")
        assert free_ivars_unfolded(formula) == frozenset()


class TestShapedConstructors:
    def test_exists_live_shape(self):
        formula = exists_live("x", QF(atom("R", X)))
        assert classify(formula) is Fragment.MU_LP

    def test_forall_live_shape(self):
        formula = forall_live("x", QF(atom("R", X)))
        assert classify(formula) is Fragment.MU_LP

    def test_diamond_live_infers_guard(self):
        formula = exists_live("x", Mu("Z", MOr.of(
            QF(atom("R", X)), diamond_live(PredVar("Z"), guard="x"))))
        assert classify(formula) is Fragment.MU_LP

    def test_diamond_live_on_closed_body_is_plain(self):
        formula = diamond_live(QF(atom("R", "c")))
        assert formula == Diamond(QF(atom("R", "c")))

    def test_box_live(self):
        formula = box_live(MAnd.of(QF(atom("R", X))), guard="x")
        assert isinstance(formula, Box)
        assert classify(exists_live("x", formula)) is Fragment.MU_LP

    def test_live_constructor(self):
        assert live("x y").terms == (Var("x"), Var("y"))
