"""The deterministic abstraction (Theorem 4.3) against the paper's figures."""

import pytest

from repro.errors import AbstractionDiverged, ReproError
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_42, example_43, \
    theorem_45_witness
from repro.relational import Instance, fact
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, det_growth_trace
from repro.semantics.abstract_det import DetState


class TestFigure3:
    """Example 4.1 — Figure 3(b)."""

    def test_state_count(self, ex41_abstraction):
        assert len(ex41_abstraction) == 10

    def test_level_structure(self, ex41_abstraction):
        levels = [len(level) for level in ex41_abstraction.depth_levels()]
        assert levels == [1, 5, 4]

    def test_initial_database(self, ex41_abstraction):
        initial_db = ex41_abstraction.db(ex41_abstraction.initial)
        assert initial_db == Instance([fact("P", "a"), fact("Q", "a", "a")])

    def test_first_level_commits(self, ex41_abstraction):
        ts = ex41_abstraction
        level1 = ts.depth_levels()[1]
        databases = {ts.db(state) for state in level1}
        # The five equality commitments over f(a), g(a) vs known value a.
        assert Instance([fact("P", "a"), fact("R", "a"),
                         fact("Q", "a", "a")]) in databases
        assert Instance([fact("P", "a"), fact("R", "a"),
                         fact("Q", Fresh(0), Fresh(0))]) in databases
        assert Instance([fact("P", "a"), fact("R", "a"),
                         fact("Q", Fresh(0), Fresh(1))]) in databases

    def test_every_state_total(self, ex41_abstraction):
        assert ex41_abstraction.is_total()

    def test_r_dropped_when_q_aa_lost(self, ex41_abstraction):
        ts = ex41_abstraction
        level2 = ts.depth_levels()[2]
        for state in level2:
            assert not ts.db(state).tuples("R")


class TestFigure2:
    """Example 4.2 — Figure 2(b): the equality constraint pins f(a) = a."""

    def test_state_count(self, ex42_abstraction):
        assert len(ex42_abstraction) == 4

    def test_constraint_enforced_everywhere(self, ex42, ex42_abstraction):
        for state in ex42_abstraction.states:
            assert ex42.data.satisfies_constraints(
                ex42_abstraction.db(state))

    def test_f_always_returns_a(self, ex42_abstraction):
        for state in ex42_abstraction.states:
            for call, value in state.call_map:
                if call.function == "f":
                    assert value == "a"


class TestFigure4:
    """Example 4.3 — run-unbounded: the abstraction diverges."""

    def test_divergence(self, ex43_det):
        with pytest.raises(AbstractionDiverged) as excinfo:
            build_det_abstraction(ex43_det, max_states=200)
        assert excinfo.value.partial_states > 200

    def test_growth_is_monotone(self, ex43_det):
        trace = det_growth_trace(ex43_det, max_depth=8)
        assert len(trace) == 9
        assert trace[-1] > trace[1]  # keeps discovering new states

    def test_truncated_marked(self, ex43_det):
        ts = build_det_abstraction(ex43_det, max_depth=3)
        assert ts.truncated_states


class TestDetState:
    def test_known_values_include_history(self):
        from repro.relational.values import ServiceCall

        state = DetState(
            Instance([fact("R", "x")]),
            ((ServiceCall("f", ("arg",)), "res"),))
        assert state.known_values() == frozenset({"x", "arg", "res"})

    def test_rejects_nondet_semantics(self):
        nondet = example_41(ServiceSemantics.NONDETERMINISTIC)
        with pytest.raises(ReproError):
            build_det_abstraction(nondet)


class TestTheorem45Witness:
    def test_run_bounded_but_wide(self):
        ts = build_det_abstraction(theorem_45_witness())
        # s0 plus one successor per commitment of f(a) vs {a}: a or fresh.
        assert len(ts) == 3
        # Successor states are terminal (no rule fires on Q-only states).
        for state in ts.states:
            if state != ts.initial:
                assert not ts.successors(state)

    def test_determinism_of_construction(self):
        first = build_det_abstraction(theorem_45_witness())
        second = build_det_abstraction(theorem_45_witness())
        assert first.states == second.states
        assert set(first.edges()) == set(second.edges())


class TestCallMapMonotone:
    def test_call_maps_grow_along_edges(self, ex41_abstraction):
        ts = ex41_abstraction
        for source, _, target in ts.edges():
            source_map = dict(source.call_map)
            target_map = dict(target.call_map)
            for call, value in source_map.items():
                assert target_map[call] == value  # determinism preserved
