"""Figure 7 — Example 4.3 under nondeterministic services (Example 5.1).

Paper: the system is state-bounded (one tuple per state); a finite
abstraction exists with the four states R(a), Q(a), R(b), Q(b). RCYCL
produces a (slightly larger) eventually-recycling pruning whose isomorphism
quotient is exactly that four-state system, persistence-bisimilar to it.
"""

import pytest

from repro.bisim import BisimMode, bisimilar
from repro.core import ServiceSemantics
from repro.gallery import example_43
from repro.semantics import isomorphism_quotient, rcycl


@pytest.fixture(scope="module")
def dcds():
    return example_43(ServiceSemantics.NONDETERMINISTIC)


def test_fig7b_rcycl(benchmark, dcds):
    ts = benchmark(rcycl, dcds)
    assert len(ts) == 6
    assert ts.max_state_size() == 1           # state bound b = 1
    assert ts.is_total()


def test_fig7b_quotient_is_four_states(benchmark, dcds):
    ts = rcycl(dcds)
    quotient, _ = benchmark(isomorphism_quotient, ts, {"a"})
    assert len(quotient) == 4                 # Figure 7(b) exactly
    databases = {repr(quotient.db(state)) for state in quotient.states}
    assert databases == {"{R('a')}", "{Q('a')}", "{R(#0)}", "{Q(#0)}"}


def test_fig7_pruning_bisimilar_to_quotient(benchmark, dcds):
    ts = rcycl(dcds)
    quotient, _ = isomorphism_quotient(ts, {"a"})
    result = benchmark(bisimilar, ts, quotient, BisimMode.PERSISTENCE)
    assert result
