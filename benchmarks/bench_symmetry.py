#!/usr/bin/env python
"""Symmetry-reduction sweep: exact vs quotient state counts and wall time.

For each configuration the script builds the state space in ``exact`` mode
and in ``quotient`` mode (dead-history canonicalization on the integer
kernel, PR 5) and records states explored, wall-clock, and the reduction
ratio in the day's ``BENCH_<date>.json`` under ``symmetry_probes``.

Configurations:

* ``commitment_blowup`` deterministic abstractions — honest null result:
  every minted value stays live in its ``Out_i`` relation and call map, so
  there is no dead history to canonicalize and the exact system is already
  canonical (ratio 1.0 by design, recorded as such);
* the travel gallery (App. E): the audit system's abstraction and the
  request system's pool-det exploration;
* ``library_system`` pool-det explorations — the fresh-value-heavy
  highlight: dead stamp receipts cycle through the pool and collapse
  (>=2x at the default size, ~4.5x at ``library[3,1]`` with a 4-value
  pool);
* independent-minter abstractions (interleaved histories differing only
  in dead-value names merge);
* a seeded fresh-value-heavy ``random_dcds`` pool-det sweep.

The target is a >=2x state-count reduction on at least one fresh-value-
heavy configuration; ``meets_target`` records whether any config reached
it.

Usage::

    python benchmarks/bench_symmetry.py            # full sweep -> BENCH json
    python benchmarks/bench_symmetry.py --quick    # CI smoke, no JSON write
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

REDUCTION_TARGET = 2.0


def fresh_pool(size):
    from repro.relational.values import Fresh

    return [Fresh(80 + index) for index in range(size)]


def independent_minters(n):
    """``n`` independent actions, each minting one short-lived value."""
    from repro.core import DCDSBuilder, ServiceSemantics

    builder = DCDSBuilder(name=f"indep[{n}]")
    builder.schema("Seed/1", *(f"Tmp{i}/1" for i in range(n)))
    builder.initial("Seed('c')")
    for index in range(n):
        builder.service(f"f{index}/1")
        builder.action(f"mint{index}", "Seed(x) ~> Seed(x)",
                       f"Seed(x) ~> Tmp{index}(f{index}(x))")
        builder.rule("true", f"mint{index}")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def timed_build(build, symmetry):
    from repro.core.execution import clear_subproblem_caches

    clear_subproblem_caches()
    started = time.perf_counter()
    ts = build(symmetry)
    return ts, time.perf_counter() - started


def measure(name, build, results, note=None):
    exact_ts, exact_sec = timed_build(build, "exact")
    quotient_ts, quotient_sec = timed_build(build, "quotient")
    assert len(quotient_ts) <= len(exact_ts), name
    ratio = len(exact_ts) / len(quotient_ts)
    entry = {
        "exact_states": len(exact_ts),
        "quotient_states": len(quotient_ts),
        "state_reduction_factor": ratio,
        "exact_sec": exact_sec,
        "quotient_sec": quotient_sec,
        "speedup_vs_exact": exact_sec / quotient_sec if quotient_sec
        else None,
    }
    if note:
        entry["note"] = note
    results[name] = entry
    print(f"  {name}: exact {len(exact_ts)} ({exact_sec:.3f}s) -> "
          f"quotient {len(quotient_ts)} ({quotient_sec:.3f}s), "
          f"{ratio:.2f}x states")
    return entry


def sweep(quick):
    from repro.core import ServiceSemantics
    from repro.gallery import audit_system, library_system, request_system
    from repro.semantics import build_det_abstraction, explore_concrete
    from repro.workloads import commitment_blowup_dcds, random_dcds

    DET = ServiceSemantics.DETERMINISTIC
    results = {}

    def abstraction(make, max_depth=None):
        return lambda symmetry: build_det_abstraction(
            make(), max_states=500000, max_depth=max_depth,
            symmetry=symmetry)

    def pool_det(make, pool_size, depth):
        return lambda symmetry: explore_concrete(
            make(), pool=fresh_pool(pool_size), depth=depth,
            max_states=500000, symmetry=symmetry)

    blowup_sizes = [4] if quick else [5, 6]
    for n in blowup_sizes:
        measure(f"blowup[{n}]-abstraction",
                abstraction(lambda n=n: commitment_blowup_dcds(n)),
                results,
                note="null result by design: every minted value stays "
                     "live, no dead history to canonicalize")

    measure("library[2,1]-pool3-depth3",
            pool_det(lambda: library_system(semantics=DET), 3, 3), results)
    if not quick:
        measure("travel-audit-abstraction",
                abstraction(lambda: audit_system()), results)
        measure("travel-request-det-pool2-depth2",
                pool_det(lambda: request_system(semantics=DET), 2, 2),
                results)
        measure("library[3,1]-pool4-depth4",
                pool_det(lambda: library_system(3, 1, semantics=DET), 4, 4),
                results)
        measure("indep[4]-abstraction",
                abstraction(lambda: independent_minters(4)), results)
        for seed in range(6):
            measure(f"random[{seed}]-heavy-pool3-depth3",
                    pool_det(lambda seed=seed: random_dcds(
                        seed, n_actions=3, n_services=3,
                        p_service_call=0.8), 3, 3), results)
            measure(f"random[{seed}]-pool3-depth3",
                    pool_det(lambda seed=seed: random_dcds(seed), 3, 3),
                    results)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small subset, assertions only, no BENCH "
                             "json write (CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    args = parser.parse_args()

    print("symmetry sweep: exact vs quotient (dead-history "
          "canonicalization)")
    results = sweep(args.quick)

    best_name, best = max(
        results.items(), key=lambda item: item[1]["state_reduction_factor"])
    section = {
        "reduction_target": REDUCTION_TARGET,
        "meets_target": best["state_reduction_factor"] >= REDUCTION_TARGET,
        "best_reduction": {
            "config": best_name,
            "state_reduction_factor": best["state_reduction_factor"],
            "exact_states": best["exact_states"],
            "quotient_states": best["quotient_states"],
        },
        "configs": results,
        "note": (
            "quotient mode canonicalizes the dead history of <I, M> "
            "states only (live values must keep their identity for µLP "
            "persistence — see repro.engine.symmetry); commitment_blowup "
            "has no dead history and honestly reduces 1.0x, the "
            "fresh-value-heavy pool/history workloads carry the target"),
    }

    if args.quick:
        print("quick mode: smoke only, BENCH json not written")
        print(json.dumps(section["best_reduction"], indent=2))
        return

    from _record import write_bench_record

    date = datetime.date.today().isoformat()
    write_bench_record(
        args.out, {"date": date, "symmetry_probes": section})


if __name__ == "__main__":
    main()
