"""Shared BENCH_<date>.json writing for the benchmark scripts.

Every script owns one or more top-level sections of the day's record
(``engine_probes``, ``checker_probes``, ``parallel_probes``, ...); the
merge convention lets them run in any order on the same day without
clobbering each other: existing dict sections update key-by-key,
everything else overwrites.
"""

from __future__ import annotations

import json
from pathlib import Path


def write_bench_record(out_dir, record: dict) -> Path:
    """Merge ``record`` into ``out_dir/BENCH_<record['date']>.json``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{record['date']}.json"
    if out_path.exists():
        merged = json.loads(out_path.read_text())
        for key, value in record.items():
            if isinstance(value, dict) and isinstance(merged.get(key), dict):
                merged[key].update(value)
            else:
                merged[key] = value
        record = merged
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return out_path
