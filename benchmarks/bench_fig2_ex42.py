"""Figure 2 — Example 4.2: concrete (pool-restricted) and abstract TS.

Paper: the abstract transition system has 4 states; the equality constraint
``P(x) & Q(y,z) -> x = y`` pins ``f(a) = a``, so the initial state has two
successors (``g(a) = a`` or fresh).
"""

import pytest

from repro.gallery import example_42
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, explore_concrete


@pytest.fixture(scope="module")
def dcds():
    return example_42()


def test_fig2b_abstract_transition_system(benchmark, dcds):
    ts = benchmark(build_det_abstraction, dcds)
    assert len(ts) == 4                       # Figure 2(b)
    levels = [len(level) for level in ts.depth_levels()]
    assert levels == [1, 2, 1]
    # f(a) = a in every state that has resolved f.
    for state in ts.states:
        for call, value in state.call_map:
            if call.function == "f":
                assert value == "a"


def test_fig2a_concrete_prefix(benchmark, dcds):
    pool = ["a", Fresh(90), Fresh(91), Fresh(92)]
    ts = benchmark(explore_concrete, dcds, pool, 2)
    # The constraint filters all evaluations with f(a) != a: per level-1
    # state only the g(a) choice varies (|pool| successors of s0).
    assert len(ts.depth_levels()[1]) == len(pool)
