"""Figure 10 — the Appendix E audit system's dependency graph.

Paper: 18 positions (Status/1, Travel/3, Hotel/7, Flight/7), special edges
only into the ``passed`` positions (from the convertAndCheck arguments),
and the graph is weakly acyclic — so the audit system is run-bounded and
µLA-verifiable with deterministic services (Theorem 4.8).
"""

import pytest

from repro.analysis import dependency_graph
from repro.gallery import audit_system
from repro.gallery.travel import property_audit_failure_propagates_slim
from repro.pipeline import verify


def test_fig10_dependency_graph(benchmark):
    graph = benchmark(dependency_graph, audit_system())
    assert len(graph.nodes) == 18
    assert graph.is_weakly_acyclic()
    special_targets = {target for _, target in graph.special_edges()}
    assert special_targets == {("Hotel", 6), ("Flight", 6)}


def test_fig10_ranks_bounded(benchmark):
    graph = dependency_graph(audit_system())
    ranks = benchmark(graph.ranks)
    assert max(ranks.values()) == 1           # one service hop at most


def test_fig10_verification_route(benchmark):
    report = benchmark(verify, audit_system(slim=True),
                       property_audit_failure_propagates_slim(), 4000)
    assert report.holds
    assert report.route == "det-abstraction"
    assert report.static_condition == "weakly-acyclic"
