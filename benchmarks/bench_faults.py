#!/usr/bin/env python
"""Fault-tolerance probes: recovery latency and checkpoint overhead.

Two questions the PR 9 resilience layer must answer with numbers:

1. **Recovery latency** — when a worker dies (or hangs, corrupts its
   reply, runs out of memory) mid-build, how long does the supervisor
   spend detecting the failure, respawning the link, and redispatching
   the lost batches? Measured per fault kind against the undisturbed
   parallel build of the same workload, always asserting the recovered
   transition system matches the baseline state/edge counts (the
   differential tests cover the stronger bit-identity property).

2. **Checkpoint overhead** — how much does ``checkpoint=`` slow the
   sequential hot-path gate configurations of
   ``bench_complexity_scaling``? Target: under 10% with the default
   write interval on builds long enough for a fraction to be meaningful
   (see ``MIN_GATE_SEC``); shorter configs are reported with their
   fixed durability cost. An interrupt/resume round-trip is also timed,
   as the recovery-side cost of the same feature.

Results land in the day's ``BENCH_<date>.json`` under ``fault_probes``
(section-level merge, same convention as the other scripts).

Usage::

    python benchmarks/bench_faults.py            # full run -> BENCH json
    python benchmarks/bench_faults.py --quick    # CI smoke, no JSON write
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Checkpoint overhead budget on the gate configurations (fractional).
OVERHEAD_TARGET = 0.10

#: The target applies to builds at least this long. Below it, the fixed
#: durability cost (two fsyncs plus the one-time final snapshot encode,
#: ~2-3 ms total) dwarfs the build itself and a *fraction* is not a
#: meaningful budget; those configs are still measured and reported.
MIN_GATE_SEC = 0.1

#: One spec per recovery path in ``ParallelExplorer._recover``.
FAULT_SCENARIOS = {
    "kill": "kill:0@2",
    "double-kill": "kill:0@1,kill:1@1",
    "oom": "oom:1@1",
    "corrupt": "corrupt:0@2,seed:5",
    "hang": "hang:1@2",
    "drop": "drop:0@3",
}


def _fresh():
    from repro.core.execution import clear_subproblem_caches

    clear_subproblem_caches()


def build_parallel(dcds, spec=None, dispatch_timeout=1.0):
    from repro.engine import (
        DetAbstractionGenerator, FaultPlan, ParallelExplorer)

    _fresh()
    started = time.perf_counter()
    result = ParallelExplorer(
        dcds.schema, max_states=400000, workers=2, batch_size=8,
        dispatch_timeout=dispatch_timeout,
        faults=FaultPlan.parse(spec) if spec else None,
    ).run(DetAbstractionGenerator(dcds))
    return result, time.perf_counter() - started


def recovery_sweep(repeats):
    from repro.workloads import commitment_blowup_dcds

    dcds = commitment_blowup_dcds(4)
    baseline_result, baseline_sec = min(
        (build_parallel(dcds) for _ in range(repeats)),
        key=lambda pair: pair[1])
    baseline_ts = baseline_result.transition_system
    section = {
        "workload": "blowup[4]",
        "workers": 2,
        "fault_free_sec": baseline_sec,
        "scenarios": {},
    }
    for name, spec in FAULT_SCENARIOS.items():
        result, total_sec = min(
            (build_parallel(dcds, spec) for _ in range(repeats)),
            key=lambda pair: pair[1])
        ts = result.transition_system
        assert len(ts) == len(baseline_ts), name
        assert ts.edge_count() == baseline_ts.edge_count(), name
        stats = result.stats.parallel
        section["scenarios"][name] = {
            "spec": spec,
            "total_sec": total_sec,
            "recovery_sec": stats["recovery_sec"],
            "slowdown_sec": total_sec - baseline_sec,
            "crashes": stats["crashes"],
            "respawns": stats["respawns"],
            "redispatches": stats["redispatches"],
            "integrity_errors": stats["integrity_errors"],
        }
        print(f"  {name:12s} ({spec}): {total_sec:.3f}s total, "
              f"{stats['recovery_sec']:.3f}s in recovery, "
              f"{stats['crashes']} crash(es), "
              f"{stats['redispatches']} redispatch(es)")
    return section


def gate_configs():
    from repro.workloads import (
        chain_dcds, commitment_blowup_dcds, conveyor_dcds, lattice_dcds)

    # Mirrors bench_complexity_scaling.GATE_PROBES: the configurations
    # whose sequential build time the hot-path gate guards.
    return {
        "abstraction-blowup[3]": lambda: commitment_blowup_dcds(3),
        "chain[3]": lambda: chain_dcds(3),
        "conveyor[2]": lambda: conveyor_dcds(2),
        "lattice[3]": lambda: lattice_dcds(3),
    }


def build_sequential(dcds, checkpoint=None):
    from repro.engine import DetAbstractionGenerator, Explorer

    _fresh()
    started = time.perf_counter()
    result = Explorer(dcds.schema, max_states=400000,
                      checkpoint=checkpoint).run(
        DetAbstractionGenerator(dcds))
    return result, time.perf_counter() - started


def checkpoint_overhead(repeats, tmp_dir):
    from repro.engine import Checkpoint

    section = {"target_fraction": OVERHEAD_TARGET,
               "min_gate_sec": MIN_GATE_SEC, "configs": {}}
    worst = 0.0
    for name, make in gate_configs().items():
        dcds = make()
        # Interleave plain and checkpointed rounds so machine noise
        # (scheduler, page cache) hits both arms alike; min-of-N then
        # compares the same quiet moments.
        plain_sec = None
        best_ck = None
        for round_index in range(repeats):
            _, round_plain = build_sequential(dcds)
            plain_sec = round_plain if plain_sec is None \
                else min(plain_sec, round_plain)
            path = os.path.join(tmp_dir, f"{name}-{round_index}.ck")
            _, ck_sec = build_sequential(dcds, checkpoint=Checkpoint(path))
            best_ck = ck_sec if best_ck is None else min(best_ck, ck_sec)
        overhead = (best_ck - plain_sec) / plain_sec if plain_sec else 0.0
        gated = plain_sec >= MIN_GATE_SEC
        if gated:
            worst = max(worst, overhead)
        section["configs"][name] = {
            "plain_sec": plain_sec,
            "checkpointed_sec": best_ck,
            "overhead_fraction": overhead,
            "gated": gated,
        }
        if gated:
            verdict = "ok" if overhead <= OVERHEAD_TARGET \
                else "OVER TARGET"
        else:
            verdict = "(fixed-cost dominated, informational)"
        print(f"  {name:24s}: {plain_sec * 1e3:.2f} ms plain, "
              f"{best_ck * 1e3:.2f} ms checkpointed "
              f"({overhead:+.1%}) {verdict}")
    section["worst_fraction"] = worst
    return section


def resume_round_trip(tmp_dir):
    """Interrupt a build mid-way, resume it, and time both halves."""
    from repro.engine import (
        Checkpoint, CheckpointInterrupted, DetAbstractionGenerator,
        Explorer)
    from repro.workloads import commitment_blowup_dcds

    dcds = commitment_blowup_dcds(4)
    baseline, _ = build_sequential(dcds)
    path = os.path.join(tmp_dir, "resume-probe.ck")
    config = Checkpoint(path, interval=0.0)
    config._interrupt_after_chunks = 2
    _fresh()
    started = time.perf_counter()
    try:
        Explorer(dcds.schema, max_states=400000,
                 checkpoint=config).run(DetAbstractionGenerator(dcds))
        raise AssertionError("interruption hook never fired")
    except CheckpointInterrupted:
        pass
    first_half_sec = time.perf_counter() - started
    result, resume_sec = build_sequential(
        dcds, checkpoint=Checkpoint(path, interval=0.0))
    ts = result.transition_system
    assert len(ts) == len(baseline.transition_system)
    assert ts.edge_count() == baseline.transition_system.edge_count()
    checkpoint_bytes = os.path.getsize(path)
    print(f"  interrupt after 2 chunks: {first_half_sec:.3f}s, resume to "
          f"completion: {resume_sec:.3f}s, file {checkpoint_bytes} B "
          f"({len(ts)} states)")
    return {
        "workload": "blowup[4]",
        "interrupted_sec": first_half_sec,
        "resume_sec": resume_sec,
        "checkpoint_bytes": checkpoint_bytes,
        "states": len(ts),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats, no JSON write (CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for BENCH_<date>.json")
    args = parser.parse_args()

    repeats = 2 if args.quick else 5
    print("recovery latency (workers=2, dispatch_timeout=1s):")
    recovery = recovery_sweep(repeats)
    with tempfile.TemporaryDirectory() as tmp_dir:
        print("checkpoint overhead on the hot-path gate configs:")
        overhead = checkpoint_overhead(repeats, tmp_dir)
        print("checkpoint interrupt/resume round trip:")
        resume = resume_round_trip(tmp_dir)

    if args.quick:
        print("--quick: skipping BENCH json write")
        return 0
    sys.path.insert(0, str(BENCH_DIR))
    from _record import write_bench_record

    write_bench_record(args.out, {
        "date": datetime.date.today().isoformat(),
        "fault_probes": {
            "recovery": recovery,
            "checkpoint_overhead": overhead,
            "resume_round_trip": resume,
        },
    })
    if overhead["worst_fraction"] > OVERHEAD_TARGET:
        print(f"WARNING: checkpoint overhead "
              f"{overhead['worst_fraction']:.1%} exceeds the "
              f"{OVERHEAD_TARGET:.0%} target")
    return 0


if __name__ == "__main__":
    sys.exit(main())
