"""Table 1 — the (un)decidability matrix, made executable.

Each cell of Table 1 is regenerated as behaviour of the library:

* **D cells** run end-to-end through ``verify`` (static condition +
  abstraction + model checking) and are timed;
* **U cells** are witnessed the way the paper proves them — by the
  Turing-machine reduction behaving faithfully (Thms 4.1/5.1) or by the
  pipeline refusing the fragment with the right theorem (Thms 5.1/5.2);
* the **"?" cell** (µL over run-bounded deterministic DCDSs) is witnessed
  by the Theorem 4.5 family defeating the finite abstraction.
"""

import pytest

from repro import UndecidableFragment, verify
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_43, student_registry, \
    theorem_45_witness
from repro.gallery.student import (
    property_eventual_graduation_mu_la, property_eventual_graduation_mu_lp,
    property_n_distinct_students)
from repro.mucalc import Fragment, ModelChecker, check, classify, parse_mu
from repro.relational.values import Fresh
from repro.semantics import (
    DeterministicOracle, build_det_abstraction, explore_concrete, simulate)
from repro.tm import (
    binary_flipper_machine, encode, has_halted, looper_machine,
    safety_property_not_halted)


# -- row: deterministic services ------------------------------------------------

def test_det_unrestricted_is_undecidable_via_tm(benchmark):
    """Cell (det, unrestricted, µL/µLA/µLP): U via Theorem 4.1 — the DCDS
    satisfies G ¬halted iff the encoded machine does not halt."""
    def witness():
        halting = encode(binary_flipper_machine(), "0")
        trace = simulate(halting, steps=8, oracle=DeterministicOracle())
        halts_in_dcds = any(has_halted(instance) for instance, _ in trace)
        looper = encode(looper_machine(), "")
        trace2 = simulate(looper, steps=8, oracle=DeterministicOracle())
        loops_in_dcds = not any(has_halted(instance)
                                for instance, _ in trace2)
        return halts_in_dcds and loops_in_dcds

    assert benchmark(witness)


def test_det_bounded_muL_no_finite_abstraction(benchmark):
    """Cell (det, bounded-run, µL): '?' — Theorem 4.5: for every finite
    abstraction some Phi_n fails although the concrete system satisfies
    all of them."""
    dcds = theorem_45_witness()
    ts = build_det_abstraction(dcds)

    def distinguish():
        checker = ModelChecker(ts)
        phi_small = parse_mu(
            "E x. mu Z. ((E w. live(w) & Q(x) & w = x) | <-> Z)")
        # Direct Phi_n family: n distinct values each reaching Q.
        from repro.gallery.student import property_n_distinct_students

        small_ok = checker.models(_phi_n(2))
        big_fails = not checker.models(_phi_n(len(ts.values()) + 1))
        return small_ok and big_fails

    assert benchmark(distinguish)


def _phi_n(n):
    """Phi_n of Theorem 4.5: n distinct values eventually stored in Q."""
    from repro.fol.ast import Eq, Not as FNot, atom
    from repro.mucalc.ast import (
        Diamond, MAnd, MExists, MOr, Mu, PredVar, QF)
    from repro.relational.values import Var

    variables = tuple(Var(f"x{i}") for i in range(n))
    distinct = [QF(FNot(Eq(variables[i], variables[j])))
                for i in range(n) for j in range(i + 1, n)]
    reach = [Mu(f"Z{i}", MOr.of(QF(atom("Q", variables[i])),
                                Diamond(PredVar(f"Z{i}"))))
             for i in range(n)]
    return MExists(variables, MAnd.of(*(distinct + reach)))


def test_det_bounded_muLA_decidable(benchmark):
    """Cell (det, bounded-run, µLA): D via Theorems 4.3/4.4/4.8.

    Both verdicts demonstrate decidability: every value ever stored in R
    eventually co-exists with P(x) (true: R only ever holds 'a', and P('a')
    is invariant); and the dual claim that R('a') recurs forever fails once
    Q(a, a) is lost.
    """
    true_formula = parse_mu(
        "nu X. ((A x. (live(x) & R(x) -> mu Y. (P(x) | <-> Y))) & [-] X)")
    assert classify(true_formula) is Fragment.MU_LA
    report = benchmark(verify, example_41(), true_formula)
    assert report.holds

    false_formula = parse_mu(
        "nu X. ((A x. (live(x) & P(x) -> mu Y. (R(x) | <-> Y))) & [-] X)")
    assert not verify(example_41(), false_formula).holds


def test_det_bounded_muLP_decidable(benchmark):
    """Cell (det, bounded-run, µLP): D (µLP ⊆ µLA)."""
    formula = parse_mu("mu Z. (R('a') | <-> Z)")
    assert classify(formula) is Fragment.MU_LP
    report = benchmark(verify, example_41(), formula)
    assert report.holds


# -- row: nondeterministic services ----------------------------------------------

def test_nondet_unrestricted_undecidable_via_tm(benchmark):
    """Cell (nondet, unrestricted): U — Theorem 5.1 reuses the Theorem 4.1
    reduction unchanged (newCell is only ever called on fresh arguments)."""
    def witness():
        dcds = encode(binary_flipper_machine(), "0",
                      semantics=ServiceSemantics.NONDETERMINISTIC)
        pool = [Fresh(100 + i) for i in range(4)]
        ts = explore_concrete(dcds, pool, depth=8, max_states=5000)
        return not check(ts, safety_property_not_halted())

    assert benchmark(witness)


def test_nondet_bounded_muLA_undecidable(benchmark):
    """Cell (nondet, bounded-state, µLA): U — the pipeline refuses with
    Theorem 5.2."""
    def refuse():
        with pytest.raises(UndecidableFragment) as excinfo:
            verify(student_registry(), property_eventual_graduation_mu_la())
        return excinfo.value

    error = benchmark(refuse)
    assert "5.2" in error.theorem


def test_nondet_bounded_muLP_decidable(benchmark):
    """Cell (nondet, bounded-state, µLP): D via Theorems 5.3/5.4/5.7."""
    formula = property_eventual_graduation_mu_lp()
    assert classify(formula) is Fragment.MU_LP
    report = benchmark(verify, student_registry(), formula)
    assert report.holds
    assert report.route == "rcycl"


def test_table1_summary(benchmark):
    """Assemble and assert the full matrix shape."""
    benchmark(lambda: None)  # the artifact here is the asserted table
    matrix = {
        ("det", "unrestricted"): "U U U",
        ("det", "bounded-run"): "? D D",
        ("nondet", "unrestricted"): "U U U",
        ("nondet", "bounded-state"): "U U D",
    }
    # Columns are (µL, µLA, µLP); rows as in Table 1.
    assert matrix[("det", "bounded-run")].split()[1] == "D"
    assert matrix[("nondet", "bounded-state")].split()[2] == "D"
    print("\nTable 1 (reproduced):")
    print("  services        restriction      µL  µLA  µLP")
    for (semantics, restriction), cells in matrix.items():
        mu_l, mu_la, mu_lp = cells.split()
        print(f"  {semantics:15s} {restriction:16s} {mu_l:3s} {mu_la:4s} "
              f"{mu_lp}")
