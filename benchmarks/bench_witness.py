#!/usr/bin/env python
"""Witness-extraction overhead: verify() with and without certificates.

Certificate extraction (PR 8) runs after the verdict on the hot
verification path: a rank-annotated backward BFS over the already-built
transition system plus a forward descent. This sweep measures end-to-end
``verify()`` wall-clock with extraction enabled against the
``REPRO_NO_WITNESS=1`` kill switch on gate-probe-style configurations
(the gallery properties and seeded random workloads), records the
overhead into the day's ``BENCH_<date>.json`` under ``witness_probes``,
and checks the <10% overhead target.

Honesty notes baked into the record:

* the verdict, route, and state/edge counts must be identical on both
  sides of every pair (the kill switch is behavioral-drift-free — also
  pinned by ``tests/test_witness.py``);
* every certificate produced while timing is fed through the
  *independent* replay checker (:mod:`repro.mucalc.certify`), so the
  measured path is the real, validated one;
* overhead is reported from the min of several alternating runs (the
  standard robust estimator: systematic cost survives the min, scheduler
  noise does not); on sub-20ms configs even that is jitter-bound, so the
  target check there uses the extractor's own clock
  (``extraction_sec``, measured inside ``verify()`` and free of build
  noise) — the per-config record says which basis was used.

Usage::

    python benchmarks/bench_witness.py            # full sweep -> BENCH json
    python benchmarks/bench_witness.py --quick    # CI smoke, no JSON write
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OVERHEAD_TARGET_PCT = 10.0
REPEATS = 7
#: Below this build time, end-to-end deltas are scheduler jitter; the
#: target check falls back to the extractor's own clock.
MACRO_FLOOR_SEC = 0.02


def reachability_formula(dcds):
    """``EF (R0 nonempty)`` with LIVE-guarded quantifiers (µLP)."""
    from repro.mucalc import parse_mu

    arity = dcds.schema.arity("R0")
    variables = [f"x{i}" for i in range(arity)]
    guards = " & ".join(f"live({v})" for v in variables)
    quantifiers = " ".join(f"E {v}." for v in variables)
    return parse_mu(
        f"mu Z. (({quantifiers} {guards} & R0({', '.join(variables)}))"
        f" | <-> Z)")


def timed_verify(dcds, formula, disable_witness):
    from repro.core.execution import clear_subproblem_caches
    from repro.pipeline import verify

    saved = os.environ.pop("REPRO_NO_WITNESS", None)
    try:
        if disable_witness:
            os.environ["REPRO_NO_WITNESS"] = "1"
        clear_subproblem_caches()
        started = time.perf_counter()
        report = verify(dcds, formula, max_states=100000)
        elapsed = time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_NO_WITNESS", None)
        if saved is not None:
            os.environ["REPRO_NO_WITNESS"] = saved
    return report, elapsed


def measure(name, make_dcds, make_formula, results):
    from repro.mucalc.certify import validate

    dcds = make_dcds()
    formula = make_formula(dcds)
    enabled_runs, disabled_runs = [], []
    baseline = None
    for _ in range(REPEATS):
        # Alternate the two sides so drift (cache warmth, CPU frequency)
        # hits both equally.
        enabled, enabled_sec = timed_verify(dcds, formula, False)
        disabled, disabled_sec = timed_verify(dcds, formula, True)
        enabled_runs.append(enabled_sec)
        disabled_runs.append(disabled_sec)

        # Kill switch honored, zero behavioral drift.
        assert disabled.witness is None and disabled.violation is None, name
        assert disabled.checking_stats["witness"] == {"enabled": False}
        assert disabled.holds == enabled.holds, name
        assert disabled.route == enabled.route, name
        assert disabled.abstraction_stats["states"] \
            == enabled.abstraction_stats["states"], name

        # The timed certificate is real: the independent oracle takes it.
        certificate = enabled.witness or enabled.violation
        if certificate is not None:
            validate(enabled.transition_system, certificate)
        baseline = enabled

    enabled_min = min(enabled_runs)
    disabled_min = min(disabled_runs)
    overhead_pct = 100.0 * (enabled_min - disabled_min) / disabled_min \
        if disabled_min else 0.0
    extraction_sec = baseline.checking_stats["witness"].get(
        "extraction_sec") or 0.0
    extraction_share_pct = 100.0 * extraction_sec / disabled_min \
        if disabled_min else 0.0
    macro = disabled_min >= MACRO_FLOOR_SEC
    certificate = baseline.witness or baseline.violation
    entry = {
        "holds": baseline.holds,
        "states": baseline.abstraction_stats["states"],
        "certificate": None if certificate is None else certificate.kind,
        "certificate_steps": None if certificate is None
        else len(certificate.steps),
        "outcome": baseline.checking_stats["witness"]["outcome"],
        "extraction_sec": extraction_sec,
        "enabled_sec": enabled_min,
        "disabled_sec": disabled_min,
        "overhead_pct": overhead_pct,
        "extraction_share_pct": extraction_share_pct,
        "target_basis": "end-to-end" if macro else "extractor-clock",
        "target_overhead_pct": overhead_pct if macro
        else extraction_share_pct,
        "jitter_pct": 100.0 * (max(disabled_runs) - disabled_min)
        / disabled_min if disabled_min else 0.0,
    }
    results[name] = entry
    print(f"  {name}: enabled {enabled_min:.4f}s vs disabled "
          f"{disabled_min:.4f}s ({overhead_pct:+.1f}% end-to-end, "
          f"{extraction_share_pct:.2f}% extractor-clock, "
          f"basis={entry['target_basis']}), "
          f"certificate={entry['certificate']} "
          f"({entry['certificate_steps']} steps)")
    return entry


def sweep(quick):
    from repro.core import ServiceSemantics
    from repro.gallery import example_41, student_registry
    from repro.gallery.student import property_eventual_graduation_mu_lp
    from repro.mucalc import parse_mu
    from repro.workloads import random_dcds

    results = {}
    measure("ex41-EF-witness", example_41,
            lambda _: parse_mu("mu Z. (R('a') | <-> Z)"), results)
    measure("ex41-AG-violation", example_41,
            lambda _: parse_mu("nu X. (R('a') & [-] X)"), results)
    measure("random[1]-det-EF",
            lambda: random_dcds(1, shape="weakly-acyclic",
                                semantics=ServiceSemantics.DETERMINISTIC),
            reachability_formula, results)
    if not quick:
        measure("students-EF-graduation-witness", student_registry,
                lambda _: parse_mu(
                    "mu Z. ((E x, y. live(x) & live(y) & Grad(x, y))"
                    " | <-> Z)"), results)
        measure("students-nested-invariant-no-certificate",
                student_registry,
                lambda _: property_eventual_graduation_mu_lp(), results)
        for seed in (3, 4, 6):
            measure(f"random[{seed}]-det-EF",
                    lambda seed=seed: random_dcds(
                        seed, shape="weakly-acyclic",
                        semantics=ServiceSemantics.DETERMINISTIC),
                    reachability_formula, results)
        measure("random[1]-heavy-det-EF",
                lambda: random_dcds(
                    1, n_actions=3, n_services=3, p_service_call=0.8,
                    semantics=ServiceSemantics.DETERMINISTIC),
                reachability_formula, results)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small subset, assertions only, no BENCH "
                             "json write (CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    args = parser.parse_args()

    print("witness-extraction overhead: verify() with certificates vs "
          "REPRO_NO_WITNESS=1")
    results = sweep(args.quick)

    worst_name, worst = max(
        results.items(), key=lambda item: item[1]["target_overhead_pct"])
    section = {
        "overhead_target_pct": OVERHEAD_TARGET_PCT,
        "meets_target": worst["target_overhead_pct"]
        <= OVERHEAD_TARGET_PCT,
        "worst_overhead": {
            "config": worst_name,
            "target_basis": worst["target_basis"],
            "target_overhead_pct": worst["target_overhead_pct"],
            "enabled_sec": worst["enabled_sec"],
            "disabled_sec": worst["disabled_sec"],
        },
        "configs": results,
        "note": (
            "extraction is a post-verdict backward BFS over the built "
            "transition system; on these gate probes it is microseconds "
            "against millisecond-and-up builds. Sub-20ms configs are "
            "scored by the extractor's own clock (end-to-end deltas "
            "there are scheduler jitter — recorded anyway, alongside "
            "the observed jitter band). Every timed certificate was "
            "accepted by the independent replay checker; both sides of "
            "every pair agreed on verdict, route, and state counts"),
    }
    print(json.dumps(section["worst_overhead"], indent=2))

    if args.quick:
        print("quick mode: smoke only, BENCH json not written")
        return

    from _record import write_bench_record

    date = datetime.date.today().isoformat()
    write_bench_record(
        args.out, {"date": date, "witness_probes": section})


if __name__ == "__main__":
    main()
