#!/usr/bin/env python
"""Run the benchmark suite and emit a ``BENCH_<date>.json`` perf record.

The record contains:

* per-benchmark wall times (mean/min, via pytest-benchmark) for every
  ``bench_*.py`` file selected;
* engine throughput probes (states/sec, frontier peak) for representative
  workloads, taken straight from ``TransitionSystem.exploration_stats``;
* checker probes: the compiled model checker vs the seed-style reference
  evaluator over the ``bench_model_checking`` sweep, including the
  speedup ratio on the largest fixpoint-alternation configuration.

An existing ``BENCH_<date>.json`` for the same day is merged into, not
clobbered (section-level, so a partial ``--pattern`` run keeps earlier
sections).

Usage::

    python benchmarks/run_all.py                  # full suite
    python benchmarks/run_all.py --pattern bench_complexity_scaling.py
    python benchmarks/run_all.py --out results/   # output directory
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
SRC = str(REPO_ROOT / "src")


def run_pytest_benchmarks(pattern: str) -> dict:
    """Run the selected bench files under pytest-benchmark, return stats."""
    targets = sorted(BENCH_DIR.glob(pattern))
    if not targets:
        raise SystemExit(f"no benchmark files match {pattern!r}")
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        command = [
            sys.executable, "-m", "pytest", *map(str, targets),
            "--benchmark-only", "-q", f"--benchmark-json={json_path}",
        ]
        completed = subprocess.run(command, env=env, cwd=str(REPO_ROOT))
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed ({completed.returncode})")
        raw = json.loads(json_path.read_text())
    results = {}
    for bench in raw.get("benchmarks", []):
        results[bench["fullname"]] = {
            "mean_sec": bench["stats"]["mean"],
            "min_sec": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return results


def engine_throughput_probes() -> dict:
    """Build representative state spaces and report engine stats."""
    sys.path.insert(0, SRC)
    from repro.gallery import example_43, request_system
    from repro.core import ServiceSemantics
    from repro.semantics import build_det_abstraction, rcycl
    from repro.workloads import (
        chain_dcds, commitment_blowup_dcds, conveyor_dcds)

    probes = {
        "det-abstraction/blowup[3]":
            lambda: build_det_abstraction(commitment_blowup_dcds(3), 100000),
        "det-abstraction/chain[3]":
            lambda: build_det_abstraction(chain_dcds(3), 100000),
        "det-abstraction/conveyor[2]":
            lambda: build_det_abstraction(conveyor_dcds(2), 100000),
        "rcycl/example43":
            lambda: rcycl(example_43(ServiceSemantics.NONDETERMINISTIC)),
        "rcycl/request-system[slim]":
            lambda: rcycl(request_system(slim=True)),
    }
    stats = {}
    for name, build in probes.items():
        ts = build()
        stats[name] = {
            "states": len(ts),
            "edges": ts.edge_count(),
            "states_per_sec": ts.exploration_stats.get("states_per_sec"),
            "frontier_peak": ts.exploration_stats.get("frontier_peak"),
            "duration_sec": ts.exploration_stats.get("duration_sec"),
        }
    return stats


def _env_overrides(**overrides):
    """Context manager: set/restore environment switches around a probe.

    All vector kill switches are (re-)read inside the calls being timed —
    ``vector_enabled`` per kernel call, ``bitset_enabled`` per engine
    construction — except ``REPRO_NO_KERNEL``, which binds when a kernel
    first attaches to a DCDS; backend probes therefore build a *fresh*
    specification inside the context."""
    import contextlib

    @contextlib.contextmanager
    def apply():
        saved = {name: os.environ.get(name) for name in overrides}
        try:
            for name, value in overrides.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            yield
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
    return apply()


def checker_probes() -> dict:
    """Compiled (bitset / sets) vs reference checking over the sweep grid
    plus the long-diameter chain pair.

    The acceptance bars tracked here: >= 2x compiled-vs-reference on the
    largest alternation configuration (``largest_alternation.speedup``)
    and a measurable bitset-vs-sets win on the chain probes
    (``chain.*.bitset_speedup``). The ring sweep's own bitset-vs-sets
    ratio is recorded unfiltered — it hovers around 1x there (leaf-query
    bound), which is the honest contrast case."""
    import time

    sys.path.insert(0, SRC)
    sys.path.insert(0, str(BENCH_DIR))
    from bench_model_checking import (
        CHAIN_SIZES, DEPTHS, SIZES, chain_formulas, chain_ts,
        formula_for_depth, quantified_formula, synthetic_ts)
    from repro.mucalc import ModelChecker

    def timed(build_checker, formula):
        started = time.perf_counter()
        result = build_checker().evaluate(formula)
        return time.perf_counter() - started, result

    def three_way(ts, formula, context, reference=True):
        with _env_overrides(REPRO_NO_VECTOR=None):
            bitset_sec, bitset_ext = timed(lambda: ModelChecker(ts), formula)
        with _env_overrides(REPRO_NO_VECTOR="1"):
            sets_sec, sets_ext = timed(lambda: ModelChecker(ts), formula)
        assert bitset_ext == sets_ext, context
        entry = {
            "bitset_sec": bitset_sec,
            "sets_sec": sets_sec,
            "bitset_speedup": sets_sec / bitset_sec if bitset_sec else None,
        }
        if reference:
            reference_sec, reference_ext = timed(
                lambda: ModelChecker(ts, compiled=False), formula)
            assert bitset_ext == reference_ext, context
            entry["reference_sec"] = reference_sec
            entry["speedup"] = (reference_sec / bitset_sec
                                if bitset_sec else None)
        return entry

    probes: dict = {"sweep": {}, "chain": {}}
    for n in SIZES:
        ts = synthetic_ts(n)
        for depth in DEPTHS:
            probes["sweep"][f"states={n}/alternation={depth}"] = three_way(
                ts, formula_for_depth(depth), (n, depth))
        probes["sweep"][f"states={n}/quantified-alternation=2"] = three_way(
            ts, quantified_formula(), (n, "quantified"))
    # Chain probes: reference evaluation would take minutes at these
    # diameters (the fixpoint iterates ~n times over frozensets), so only
    # the two compiled backends are compared here; reference parity for
    # chain_ts is pinned at small size by tests/test_vector.py.
    for n in [*CHAIN_SIZES, 2 * max(CHAIN_SIZES)]:
        ts = chain_ts(n)
        for name, formula in chain_formulas().items():
            probes["chain"][f"states={n}/{name}"] = three_way(
                ts, formula, (n, name), reference=False)
    largest = probes["sweep"][
        f"states={max(SIZES)}/alternation={max(DEPTHS)}"]
    probes["largest_alternation"] = {
        "config": f"states={max(SIZES)}/alternation={max(DEPTHS)}",
        **largest,
    }
    return probes


def backend_comparison_probes() -> dict:
    """Vector vs interpreted-kernel vs reference abstraction builds.

    Best-of-5 cold builds (subproblem caches cleared, fresh DCDS per
    round so ``REPRO_NO_KERNEL`` re-binds) on the two largest gate
    configurations: the join-heavy grid where the columnar backend is
    expected to win big, and the service-call chain where instances stay
    tiny and the vector path mostly stands aside (its ``MIN_TUPLES``
    heuristic keeps the interpreted kernel in charge) — recorded as-is."""
    import time

    sys.path.insert(0, SRC)
    from repro.core.execution import clear_subproblem_caches
    from repro.semantics import build_det_abstraction
    from repro.workloads import chain_dcds, lattice_dcds

    def best_build(factory, rounds=5):
        def run():
            clear_subproblem_caches()
            dcds = factory()
            started = time.perf_counter()
            build_det_abstraction(dcds, 100000)
            return time.perf_counter() - started
        run()  # warmup
        return min(run() for _ in range(rounds))

    configs = {
        "lattice[3]": lambda: lattice_dcds(3),
        "chain[3]": lambda: chain_dcds(3),
    }
    probes = {}
    for name, factory in configs.items():
        with _env_overrides(REPRO_NO_VECTOR=None, REPRO_NO_KERNEL=None):
            vector_sec = best_build(factory)
        with _env_overrides(REPRO_NO_VECTOR="1", REPRO_NO_KERNEL=None):
            kernel_sec = best_build(factory)
        with _env_overrides(REPRO_NO_VECTOR="1", REPRO_NO_KERNEL="1"):
            reference_sec = best_build(factory)
        probes[name] = {
            "vector_sec": vector_sec,
            "kernel_sec": kernel_sec,
            "reference_sec": reference_sec,
            "vector_vs_kernel": (kernel_sec / vector_sec
                                 if vector_sec else None),
            "vector_vs_reference": (reference_sec / vector_sec
                                    if vector_sec else None),
        }
    return probes


def batch_comparison_probes() -> dict:
    """Frontier-batched vs per-state grounding abstraction builds.

    Best-of-5 cold builds with the frontier-batch tier on (default) and
    off (``REPRO_NO_BATCH=1``), plus the tier's own accounting from
    ``abstraction_stats["batch"]``. The deep-frontier conveyor family is
    the overhead-bound configuration the tier targets — wide frontiers
    of small sibling instances sharing a static payload relation, so
    per-state kernel/numpy constants dominate and cross-state dedup
    collapses most evaluations. ``chain[3]`` and ``lattice[3]`` are the
    honest contrast rows: thin frontiers (blocks below the width gate)
    leave the tier standing aside, ratios ~1x — recorded as-is."""
    import time

    sys.path.insert(0, SRC)
    from repro.core.execution import clear_subproblem_caches
    from repro.semantics import build_det_abstraction
    from repro.workloads import chain_dcds, conveyor_dcds, lattice_dcds

    def best_build(factory, rounds=5):
        def run():
            clear_subproblem_caches()
            dcds = factory()
            started = time.perf_counter()
            build_det_abstraction(dcds, 100000)
            return time.perf_counter() - started
        run()  # warmup
        return min(run() for _ in range(rounds))

    configs = {
        "conveyor[2]": lambda: conveyor_dcds(2),
        "chain[3]": lambda: chain_dcds(3),
        "lattice[3]": lambda: lattice_dcds(3),
    }
    probes = {}
    for name, factory in configs.items():
        with _env_overrides(REPRO_NO_BATCH=None):
            batched_sec = best_build(factory)
        with _env_overrides(REPRO_NO_BATCH="1"):
            per_state_sec = best_build(factory)
        clear_subproblem_caches()
        with _env_overrides(REPRO_NO_BATCH=None):
            ts = build_det_abstraction(factory(), 100000)
        batch = ts.exploration_stats.get("batch", {})
        warmed = batch.get("warmed_entries", 0)
        probes[name] = {
            "batched_sec": batched_sec,
            "per_state_sec": per_state_sec,
            "batch_speedup": (per_state_sec / batched_sec
                              if batched_sec else None),
            "blocks": batch.get("blocks"),
            "thin_blocks": batch.get("thin_blocks"),
            "block_states_peak": batch.get("block_states_peak"),
            "warmed_entries": warmed,
            "dedup_hit_rate": (batch.get("dedup_hits", 0) / warmed
                               if warmed else None),
            "fallbacks": batch.get("fallbacks"),
        }
    return probes


def profile_hot_path() -> None:
    """cProfile the two hot paths — a cold join-heavy abstraction build
    and an iteration-heavy checker run — and print the top 20 entries
    by cumulative time for each."""
    import cProfile
    import pstats

    sys.path.insert(0, SRC)
    sys.path.insert(0, str(BENCH_DIR))
    from bench_model_checking import chain_formulas, chain_ts
    from repro.core.execution import clear_subproblem_caches
    from repro.mucalc import ModelChecker
    from repro.semantics import build_det_abstraction
    from repro.workloads import lattice_dcds

    build_det_abstraction(lattice_dcds(1), 100000)  # warm imports/interning
    clear_subproblem_caches()
    profiler = cProfile.Profile()
    profiler.enable()
    build_det_abstraction(lattice_dcds(3), 100000)
    profiler.disable()
    print("\n=== abstraction build lattice[3]: top 20 by cumulative ===")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)

    ts = chain_ts(960)
    formula = chain_formulas()["inf-often"]
    ModelChecker(ts).evaluate(formula)  # warm the TS successor index
    profiler = cProfile.Profile()
    profiler.enable()
    ModelChecker(ts).evaluate(formula)
    profiler.disable()
    print("\n=== checker chain[960]/inf-often: top 20 by cumulative ===")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pattern", default="bench_*.py",
                        help="glob (under benchmarks/) of files to run")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    parser.add_argument("--skip-pytest", action="store_true",
                        help="only run the engine throughput probes")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the hot paths (join-heavy build + "
                             "iteration-heavy checker run), print the top "
                             "20 by cumulative time, and exit without "
                             "writing a record")
    args = parser.parse_args()

    if args.profile:
        profile_hot_path()
        return

    record = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_probes": engine_throughput_probes(),
        "checker_probes": checker_probes(),
        "backend_probes": backend_comparison_probes(),
        "batch_probes": batch_comparison_probes(),
    }
    if not args.skip_pytest:
        record["pytest_benchmarks"] = run_pytest_benchmarks(args.pattern)

    from _record import write_bench_record

    write_bench_record(args.out, record)


if __name__ == "__main__":
    main()
