#!/usr/bin/env python
"""Run the benchmark suite and emit a ``BENCH_<date>.json`` perf record.

The record contains:

* per-benchmark wall times (mean/min, via pytest-benchmark) for every
  ``bench_*.py`` file selected;
* engine throughput probes (states/sec, frontier peak) for representative
  workloads, taken straight from ``TransitionSystem.exploration_stats``;
* checker probes: the compiled model checker vs the seed-style reference
  evaluator over the ``bench_model_checking`` sweep, including the
  speedup ratio on the largest fixpoint-alternation configuration.

An existing ``BENCH_<date>.json`` for the same day is merged into, not
clobbered (section-level, so a partial ``--pattern`` run keeps earlier
sections).

Usage::

    python benchmarks/run_all.py                  # full suite
    python benchmarks/run_all.py --pattern bench_complexity_scaling.py
    python benchmarks/run_all.py --out results/   # output directory
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
SRC = str(REPO_ROOT / "src")


def run_pytest_benchmarks(pattern: str) -> dict:
    """Run the selected bench files under pytest-benchmark, return stats."""
    targets = sorted(BENCH_DIR.glob(pattern))
    if not targets:
        raise SystemExit(f"no benchmark files match {pattern!r}")
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        command = [
            sys.executable, "-m", "pytest", *map(str, targets),
            "--benchmark-only", "-q", f"--benchmark-json={json_path}",
        ]
        completed = subprocess.run(command, env=env, cwd=str(REPO_ROOT))
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed ({completed.returncode})")
        raw = json.loads(json_path.read_text())
    results = {}
    for bench in raw.get("benchmarks", []):
        results[bench["fullname"]] = {
            "mean_sec": bench["stats"]["mean"],
            "min_sec": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return results


def engine_throughput_probes() -> dict:
    """Build representative state spaces and report engine stats."""
    sys.path.insert(0, SRC)
    from repro.gallery import example_43, request_system
    from repro.core import ServiceSemantics
    from repro.semantics import build_det_abstraction, rcycl
    from repro.workloads import chain_dcds, commitment_blowup_dcds

    probes = {
        "det-abstraction/blowup[3]":
            lambda: build_det_abstraction(commitment_blowup_dcds(3), 100000),
        "det-abstraction/chain[3]":
            lambda: build_det_abstraction(chain_dcds(3), 100000),
        "rcycl/example43":
            lambda: rcycl(example_43(ServiceSemantics.NONDETERMINISTIC)),
        "rcycl/request-system[slim]":
            lambda: rcycl(request_system(slim=True)),
    }
    stats = {}
    for name, build in probes.items():
        ts = build()
        stats[name] = {
            "states": len(ts),
            "edges": ts.edge_count(),
            "states_per_sec": ts.exploration_stats.get("states_per_sec"),
            "frontier_peak": ts.exploration_stats.get("frontier_peak"),
            "duration_sec": ts.exploration_stats.get("duration_sec"),
        }
    return stats


def checker_probes() -> dict:
    """Compiled vs reference model checking over the sweep grid.

    The acceptance bar tracked here: >= 2x on the largest alternation
    configuration (``largest_alternation.speedup``)."""
    import time

    sys.path.insert(0, SRC)
    sys.path.insert(0, str(BENCH_DIR))
    from bench_model_checking import (
        DEPTHS, SIZES, formula_for_depth, quantified_formula, synthetic_ts)
    from repro.mucalc import ModelChecker

    def timed(build_checker, formula):
        started = time.perf_counter()
        result = build_checker().evaluate(formula)
        return time.perf_counter() - started, result

    probes: dict = {"sweep": {}}
    for n in SIZES:
        ts = synthetic_ts(n)
        for depth in DEPTHS:
            formula = formula_for_depth(depth)
            compiled_sec, compiled_ext = timed(
                lambda: ModelChecker(ts), formula)
            reference_sec, reference_ext = timed(
                lambda: ModelChecker(ts, compiled=False), formula)
            assert compiled_ext == reference_ext, (n, depth)
            probes["sweep"][f"states={n}/alternation={depth}"] = {
                "compiled_sec": compiled_sec,
                "reference_sec": reference_sec,
                "speedup": reference_sec / compiled_sec
                if compiled_sec else None,
            }
        formula = quantified_formula()
        compiled_sec, compiled_ext = timed(lambda: ModelChecker(ts), formula)
        reference_sec, reference_ext = timed(
            lambda: ModelChecker(ts, compiled=False), formula)
        assert compiled_ext == reference_ext, (n, "quantified")
        probes["sweep"][f"states={n}/quantified-alternation=2"] = {
            "compiled_sec": compiled_sec,
            "reference_sec": reference_sec,
            "speedup": reference_sec / compiled_sec
            if compiled_sec else None,
        }
    largest = probes["sweep"][
        f"states={max(SIZES)}/alternation={max(DEPTHS)}"]
    probes["largest_alternation"] = {
        "config": f"states={max(SIZES)}/alternation={max(DEPTHS)}",
        **largest,
    }
    return probes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pattern", default="bench_*.py",
                        help="glob (under benchmarks/) of files to run")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    parser.add_argument("--skip-pytest", action="store_true",
                        help="only run the engine throughput probes")
    args = parser.parse_args()

    record = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_probes": engine_throughput_probes(),
        "checker_probes": checker_probes(),
    }
    if not args.skip_pytest:
        record["pytest_benchmarks"] = run_pytest_benchmarks(args.pattern)

    from _record import write_bench_record

    write_bench_record(args.out, record)


if __name__ == "__main__":
    main()
