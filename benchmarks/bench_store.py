#!/usr/bin/env python
"""Out-of-core store bench: peak-memory-vs-budget and ample-budget overhead.

Three probe families, recorded under ``store_probes`` in the day's
``BENCH_<date>.json`` (section-level merge, same convention as
``run_all.py``):

* **spill** — the over-RAM demonstration: ``warehouse_dcds(3)`` (6561
  states carrying a payload catalog) built in RAM and under an explicit
  ``memory_budget`` whose total stored state bytes *exceed* the budget.
  Records traced (tracemalloc) and RSS (VmHWM) peaks for both builds,
  the store's own counters, and a canonical-frame digest comparison
  proving the budgeted build is bit-identical to the in-RAM one. A
  small fixed-floor control (same spec, same budget, tiny state cap)
  separates the storage-attributable peak from the interpreter/kernel/
  catalog floor that exists at any budget.

* **scaling** — the point of the feature: the in-RAM peak grows with
  the state count while the budgeted peak stays near-flat
  (``warehouse[2]`` vs ``warehouse[3]``).

* **ample_overhead** — the existing hot-path gate configs
  (``bench_complexity_scaling.GATE_PROBES``) built with an ample
  (1 GiB) budget vs unbudgeted, best-of-N without tracing. The target
  is <10% overhead; fixed per-state encoding costs are reported
  honestly where they dominate.

Usage::

    python benchmarks/bench_store.py            # full -> BENCH json
    python benchmarks/bench_store.py --quick    # CI smoke, no JSON write
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import sys
import time
import tracemalloc
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

AMPLE_BUDGET = 1 << 30
OVERHEAD_TARGET_PCT = 10.0
FIXED_COST_FLOOR_SEC = 0.05


# ---------------------------------------------------------------------------
# Peak-memory instrumentation
# ---------------------------------------------------------------------------

def _reset_rss_hwm() -> bool:
    """Reset the kernel's per-process peak-RSS counter (Linux)."""
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


def _rss_hwm():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


# ---------------------------------------------------------------------------
# Builds
# ---------------------------------------------------------------------------

def _fresh(factory):
    from repro.core.execution import clear_subproblem_caches

    clear_subproblem_caches()
    return factory()


def timed_build(factory, budget=None, max_states=100_000, trace=False):
    """One cold build; returns ``(ts, codec, metrics)``.

    The codec is snapshotted *before* exploring (the same anchor the
    paged store uses), so canonical frames encoded through it are
    comparable byte-for-byte across independent builds — including the
    budgeted build's own pages.
    """
    from repro.engine import DetAbstractionGenerator, Explorer
    from repro.engine.store import StateCodec
    from repro.relational.kernel import kernel_for

    dcds = _fresh(factory)
    kernel = kernel_for(dcds)
    codec = StateCodec(kernel, len(kernel.table)) if kernel else None
    rss_ok = _reset_rss_hwm()
    if trace:
        tracemalloc.start()
    started = time.perf_counter()
    ts = Explorer(dcds.schema, max_states=max_states,
                  on_budget="truncate", memory_budget=budget).run(
        DetAbstractionGenerator(dcds)).transition_system
    sec = time.perf_counter() - started
    metrics = {"sec": sec, "states": len(ts)}
    if trace:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        metrics["traced_peak_bytes"] = peak
    if rss_ok:
        metrics["rss_hwm_bytes"] = _rss_hwm()
    metrics["store"] = ts.exploration_stats.get("store")
    return ts, codec, metrics


def canonical_digests(ts, codec):
    """Order-insensitive digest multiset of the build's states.

    A budgeted build answers straight from its pages (no
    materialization); a plain build encodes its live states through the
    pre-exploration codec. Equality of the two multisets is equality of
    the state sets, frame by canonical frame.
    """
    from repro.engine import StoredTransitionSystem

    if isinstance(ts, StoredTransitionSystem) and not ts.materialized:
        store = ts.store
        frames = (store.raw_frame(sid) for sid in range(len(store)))
    else:
        frames = (codec.encode_state(state) for state in ts._db)
    return sorted(
        hashlib.blake2b(frame, digest_size=16).hexdigest()
        for frame in frames)


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------

def spill_probe(factory, config_name, budget, floor_states=256):
    print(f"spill probe: {config_name} budget={budget >> 20}MiB")
    plain_ts, plain_codec, plain = timed_build(factory, trace=True)
    plain_digests = canonical_digests(plain_ts, plain_codec)
    plain_stats = plain_ts.stats()
    del plain_ts  # release the in-RAM build before the budgeted one,
    # so its RSS high-water mark is its own
    budgeted_ts, _, budgeted = timed_build(factory, budget=budget,
                                           trace=True)
    store = budgeted["store"]
    assert store, "budget did not engage the paged store"
    # The digest sweep reads every raw frame, flushing any state that
    # was still hot (frames write lazily) — after it, bytes_written is
    # the total stored size of the state space.
    identical = plain_digests == canonical_digests(budgeted_ts, None)
    stored_bytes = budgeted_ts.store.stats_dict()["bytes_written"]
    structure_identical = (
        plain_stats["states"] == budgeted_ts.stats()["states"]
        and plain_stats["edges"] == budgeted_ts.stats()["edges"])
    del budgeted_ts

    # The fixed floor: same spec, same budget, state growth capped — the
    # interpreter/kernel/catalog/transient-expansion footprint that
    # exists at any budget and is not storage-managed.
    _, _, floor = timed_build(factory, budget=budget,
                              max_states=floor_states, trace=True)
    storage_peak = budgeted["traced_peak_bytes"] \
        - floor["traced_peak_bytes"]
    entry = {
        "config": config_name,
        "states": budgeted["states"],
        "memory_budget_bytes": budget,
        "stored_bytes_written": stored_bytes,
        "stored_exceeds_budget": stored_bytes > budget,
        "bit_identical_to_unbudgeted": identical and structure_identical,
        "plain_traced_peak_bytes": plain["traced_peak_bytes"],
        "budgeted_traced_peak_bytes": budgeted["traced_peak_bytes"],
        "peak_reduction_factor": plain["traced_peak_bytes"]
        / budgeted["traced_peak_bytes"],
        "plain_rss_hwm_bytes": plain.get("rss_hwm_bytes"),
        "budgeted_rss_hwm_bytes": budgeted.get("rss_hwm_bytes"),
        "fixed_floor_traced_bytes": floor["traced_peak_bytes"],
        "storage_peak_bytes": storage_peak,
        "storage_peak_within_budget": storage_peak <= budget,
        "index_resident_bytes": store["charged"]["index"],
        "evictable_charged_within_target":
            store["budget_high_water"] - store["charged"]["index"]
            <= store["budget_enforce_target"],
        "plain_sec": plain["sec"],
        "budgeted_sec": budgeted["sec"],
        "slowdown_factor": budgeted["sec"] / plain["sec"],
        "store_stats": store,
        "note": (
            "Both sides timed with tracemalloc active (equal tracing "
            "overhead; the slowdown factor is the honest price of memo "
            "eviction + page round-trips under the budget). The fixed "
            "floor is a same-budget build capped at "
            f"{floor_states} states: interpreter, kernel tables, the "
            "live payload catalog, and per-expansion transients — "
            "memory that exists at any budget and is not what the "
            "store manages. storage_peak_bytes = budgeted peak minus "
            "that floor: the state-volume-dependent part the budget "
            "actually bounds. The budget enforces its *evictable* "
            "charge (hot states, memos, interner) against "
            "ENFORCE_FRACTION of the stated cap — "
            "evictable_charged_within_target pins that contract; the "
            "reserved headroom absorbs what the structural estimator "
            "cannot see (container overallocation, transient "
            "encode/decode buffers). The index account "
            "(index_resident_bytes: fingerprints, page refs, the hash "
            "map, edge arrays) is the addressable result itself — "
            "charged honestly, never evictable, and at a budget this "
            "deliberately small it exceeds the target on its own, "
            "squeezing the caches to their floors. What the budget "
            "bounds is what is boundable — the traced peak shows the "
            "outcome."),
    }
    print(f"  {entry['states']} states, stored "
          f"{stored_bytes / 1e6:.2f} MB vs budget "
          f"{budget / 1e6:.2f} MB, plain peak "
          f"{plain['traced_peak_bytes'] / 1e6:.1f} MB -> budgeted peak "
          f"{budgeted['traced_peak_bytes'] / 1e6:.1f} MB "
          f"({entry['peak_reduction_factor']:.0f}x), bit-identical: "
          f"{entry['bit_identical_to_unbudgeted']}")
    return entry


def scaling_probe(small_factory, small_name, small_budget, spill_entry):
    print(f"scaling probe: {small_name}")
    plain_ts, _, plain = timed_build(small_factory, trace=True)
    del plain_ts
    budgeted_ts, _, budgeted = timed_build(small_factory,
                                           budget=small_budget, trace=True)
    del budgeted_ts
    plain_growth = spill_entry["plain_traced_peak_bytes"] \
        / plain["traced_peak_bytes"]
    budgeted_growth = spill_entry["budgeted_traced_peak_bytes"] \
        / budgeted["traced_peak_bytes"]
    entry = {
        "small_config": small_name,
        "large_config": spill_entry["config"],
        "state_growth_factor": spill_entry["states"] / plain["states"],
        "plain_peak_small_bytes": plain["traced_peak_bytes"],
        "plain_peak_large_bytes": spill_entry["plain_traced_peak_bytes"],
        "plain_peak_growth_factor": plain_growth,
        "budgeted_peak_small_bytes": budgeted["traced_peak_bytes"],
        "budgeted_peak_large_bytes":
            spill_entry["budgeted_traced_peak_bytes"],
        "budgeted_peak_growth_factor": budgeted_growth,
        "note": (
            "The scaling lever: across a "
            f"{spill_entry['states'] / plain['states']:.0f}x state-count "
            "growth the in-RAM peak grows with the state space while "
            "the budgeted peak is bounded by budget + fixed floor."),
    }
    print(f"  plain peak grows {plain_growth:.1f}x, budgeted peak grows "
          f"{budgeted_growth:.1f}x over a "
          f"{entry['state_growth_factor']:.0f}x state-count growth")
    return entry


def ample_overhead_probe(repeats=5):
    """The hot-path gate configs with an ample budget vs unbudgeted."""
    from repro.workloads import (
        chain_dcds, commitment_blowup_dcds, conveyor_dcds, lattice_dcds)

    gate_configs = {
        "abstraction-blowup[3]": lambda: commitment_blowup_dcds(3),
        "chain[3]": lambda: chain_dcds(3),
        "conveyor[2]": lambda: conveyor_dcds(2),
        "lattice[3]": lambda: lattice_dcds(3),
    }
    results = {}
    worst = None
    for name, factory in gate_configs.items():
        timed_build(factory)  # warmup (imports, interned schema parts)
        plain_sec = min(
            timed_build(factory)[2]["sec"] for _ in range(repeats))
        ample_sec = min(
            timed_build(factory, budget=AMPLE_BUDGET)[2]["sec"]
            for _ in range(repeats))
        overhead_pct = (ample_sec / plain_sec - 1.0) * 100.0
        fixed_cost_dominated = plain_sec < FIXED_COST_FLOOR_SEC
        results[name] = {
            "plain_sec": plain_sec,
            "ample_budget_sec": ample_sec,
            "overhead_pct": overhead_pct,
            "fixed_cost_dominated": fixed_cost_dominated,
        }
        if not fixed_cost_dominated:
            worst = overhead_pct if worst is None \
                else max(worst, overhead_pct)
        print(f"  {name}: {plain_sec:.3f}s -> {ample_sec:.3f}s "
              f"({overhead_pct:+.1f}%)"
              + (" [fixed-cost dominated]" if fixed_cost_dominated
                 else ""))
    return {
        "ample_budget_bytes": AMPLE_BUDGET,
        "repeats_best_of": repeats,
        "configs": results,
        "max_overhead_pct": worst,
        "target_pct": OVERHEAD_TARGET_PCT,
        "meets_target": worst is not None
        and worst < OVERHEAD_TARGET_PCT,
        "note": (
            "Best-of-N cold-cache builds, no tracing. With an ample "
            "budget nothing evicts, nothing rehydrates, and frames "
            "write lazily, so nothing is encoded either — the residual "
            "cost is hash-map dedup bookkeeping plus sampled budget "
            "accounting on memo inserts. The target applies to configs "
            f"building in >= {FIXED_COST_FLOOR_SEC * 1000:.0f} ms; "
            "faster ones pay a fixed ~1-2 ms for store setup, memo "
            "wrap/unwrap, and the page directory, which dominates "
            "their ratio and is flagged fixed_cost_dominated (same "
            "convention as bench_faults' checkpoint overhead)."),
    }


# ---------------------------------------------------------------------------
# Quick smoke (CI)
# ---------------------------------------------------------------------------

def quick_smoke():
    from repro.workloads import conveyor_dcds

    factory = lambda: conveyor_dcds(2)  # noqa: E731
    budget = 512 << 10
    plain_ts, plain_codec, plain = timed_build(factory)
    budgeted_ts, _, budgeted = timed_build(factory, budget=budget)
    store = budgeted["store"]
    assert store and store["backend"] == "paged", \
        "budget did not engage the paged store"
    assert store["bytes_written"] > 0
    assert canonical_digests(plain_ts, plain_codec) \
        == canonical_digests(budgeted_ts, None), \
        "budgeted build is not bit-identical to the in-RAM build"
    print(json.dumps({
        "config": "conveyor[2]",
        "states": budgeted["states"],
        "memory_budget_bytes": budget,
        "stored_bytes_written": store["bytes_written"],
        "rehydrations": store["rehydrations"],
        "evictions": store["evictions"],
        "plain_sec": plain["sec"],
        "budgeted_sec": budgeted["sec"],
        "bit_identical": True,
    }, indent=2))
    print("quick mode: smoke only, BENCH json not written")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small config smoke, no BENCH json (CI)")
    parser.add_argument("--budget", type=int, default=3 << 20,
                        help="spill-probe budget in bytes "
                             "(default 3 MiB)")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    args = parser.parse_args()

    if args.quick:
        quick_smoke()
        return

    from repro.workloads import warehouse_dcds

    spill = spill_probe(lambda: warehouse_dcds(3), "warehouse[3]",
                        args.budget)
    scaling = scaling_probe(lambda: warehouse_dcds(2), "warehouse[2]",
                            2 << 20, spill)
    print("ample-budget overhead on the hot-path gate configs:")
    ample = ample_overhead_probe()

    record_section = {
        "spill": {spill["config"]: spill},
        "scaling": scaling,
        "ample_overhead": ample,
    }
    from _record import write_bench_record

    date = datetime.date.today().isoformat()
    write_bench_record(
        args.out, {"date": date, "store_probes": record_section})


if __name__ == "__main__":
    main()
