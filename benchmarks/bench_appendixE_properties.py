"""Appendix E — the travel-reimbursement properties, verified end to end.

Paper: the request system satisfies (i) the µLP liveness property "once
initiated, a request persists until the monitor decides, and the decision
is readyToUpdate or requestConfirmed" and (ii) the safety property "a
request without cost data is never accepted"; the audit system satisfies
the µLA property "a failed check eventually fails the travel record".
"""

import pytest

from repro import verify
from repro.gallery import audit_system, request_system, student_registry
from repro.gallery.student import (
    property_eventual_graduation_mu_lp, property_no_student_while_idle)
from repro.gallery.travel import (
    property_audit_failure_propagates_slim,
    property_no_unpriced_acceptance_slim,
    property_request_eventually_decided)
from repro.mucalc import Fragment, ModelChecker, classify
from repro.semantics import rcycl


@pytest.fixture(scope="module")
def request_ts():
    return rcycl(request_system(slim=True), max_states=3000)


def test_request_liveness(benchmark, request_ts):
    formula = property_request_eventually_decided()
    assert classify(formula) is Fragment.MU_LP
    checker = ModelChecker(request_ts)
    assert benchmark(checker.models, formula)


def test_request_safety(benchmark, request_ts):
    formula = property_no_unpriced_acceptance_slim()
    checker = ModelChecker(request_ts)
    assert benchmark(checker.models, formula)


def test_audit_muLA_property(benchmark):
    report = benchmark(verify, audit_system(slim=True),
                       property_audit_failure_propagates_slim(), 4000)
    assert report.holds
    assert report.fragment in (Fragment.MU_LA, Fragment.MU_LP)


def test_student_liveness_muLP(benchmark):
    report = benchmark(verify, student_registry(),
                       property_eventual_graduation_mu_lp())
    assert report.holds


def test_student_safety(benchmark):
    report = benchmark(verify, student_registry(),
                       property_no_student_while_idle())
    assert report.holds
