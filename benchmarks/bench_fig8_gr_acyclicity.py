"""Figure 8 — dataflow graphs and GR-acyclicity verdicts.

Paper: Examples 4.1/4.2 are GR-acyclic (Fig 8(a)); Example 5.2 is not
(Fig 8(b): R self-loop generates into the Q self-loop); Example 5.3 is not
(Fig 8(c): two parallel special self-loops on R).
"""

import pytest

from repro.analysis import dataflow_graph
from repro.gallery import example_41, example_43, example_52, example_53


def test_fig8a_ex41(benchmark):
    graph = benchmark(dataflow_graph, example_41())
    assert graph.is_gr_acyclic()


def test_fig8a_ex43_nondet_gr_acyclic(benchmark):
    # Example 5.1: the only cycle contains the special edge itself.
    graph = benchmark(dataflow_graph, example_43())
    assert graph.is_gr_acyclic()


def test_fig8b_ex52(benchmark):
    graph = dataflow_graph(example_52())
    violation = benchmark(graph.gr_violation)
    assert violation is not None
    assert (violation.source, violation.target) == ("R", "Q")
    assert not graph.is_gr_plus_acyclic()


def test_fig8c_ex53_parallel_special_loops(benchmark):
    graph = benchmark(dataflow_graph, example_53())
    specials = graph.special_edges()
    assert len(specials) == 2
    assert all(edge.source == edge.target == "R" for edge in specials)
    assert not graph.is_gr_acyclic()
    assert not graph.is_gr_plus_acyclic()
