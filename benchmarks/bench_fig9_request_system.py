"""Figure 9 — the Appendix E request system's dataflow graph.

Paper: the graph (true/Travel/Hotel/Flight/Status nodes, bundles of special
edges from ``true`` for the input services) is NOT GR-acyclic — the
``true`` self-loop generates into the Travel/Hotel/Flight copy loops — but
IS GR+-acyclic: InitiateRequest's generating edges are never simultaneously
active with the copying action (VerifyRequest), so the recall cycles are
flushed between waves.
"""

import pytest

from repro.analysis import TRUE_NODE, dataflow_graph
from repro.gallery import request_system
from repro.semantics import rcycl


@pytest.fixture(scope="module")
def graph():
    return dataflow_graph(request_system())


def test_fig9_graph_structure(benchmark):
    graph = benchmark(dataflow_graph, request_system())
    assert TRUE_NODE in graph.nodes
    hotel_specials = [edge for edge in graph.edges
                      if edge.target == "Hotel" and edge.special]
    assert len(hotel_specials) == 10          # 5 Initiate + 5 Update inputs


def test_fig9_not_gr_acyclic(benchmark, graph):
    violation = benchmark(graph.gr_violation)
    assert violation is not None


def test_fig9_gr_plus_acyclic(benchmark, graph):
    result = benchmark(graph.is_gr_plus_acyclic)
    assert result                             # the paper's GR+ showcase


def test_fig9_slim_model_is_state_bounded(benchmark):
    # GR+ certifies state-boundedness (Thm 5.6/5.7): RCYCL terminates on
    # the behaviourally equivalent slim model.
    ts = benchmark(rcycl, request_system(slim=True), 3000)
    assert ts.is_total()
    assert ts.max_state_size() <= 4
