"""Figure 3 — Example 4.1: concrete (pool-restricted) and abstract TS.

Paper: the abstract system has 10 states — the initial state, five
equality-commitment successors (Fig 3(b) level 1), and four level-2 states
that lost ``R`` because ``Q(a,a)`` no longer holds.
"""

import pytest

from repro.gallery import example_41
from repro.relational import Instance, fact
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, explore_concrete


@pytest.fixture(scope="module")
def dcds():
    return example_41()


def test_fig3b_abstract_transition_system(benchmark, dcds):
    ts = benchmark(build_det_abstraction, dcds)
    assert len(ts) == 10                      # Figure 3(b)
    assert [len(level) for level in ts.depth_levels()] == [1, 5, 4]
    level1_dbs = {ts.db(state) for state in ts.depth_levels()[1]}
    assert Instance([fact("P", "a"), fact("R", "a"),
                     fact("Q", Fresh(0), Fresh(1))]) in level1_dbs


def test_fig3a_concrete_prefix(benchmark, dcds):
    pool = ["a", Fresh(90), Fresh(91)]
    ts = benchmark(explore_concrete, dcds, pool, 2)
    # Unconstrained: all |pool|^2 (f(a), g(a)) evaluations exist.
    assert len(ts.depth_levels()[1]) == len(pool) ** 2
