#!/usr/bin/env python
"""Parallel exploration sweep: worker counts x commitment-blowup sizes.

For each ``commitment_blowup_dcds(n)`` configuration the script builds the
Thm 4.3 deterministic abstraction sequentially (the baseline) and with
:class:`repro.engine.ParallelExplorer` at each worker count, asserts the
builds are bit-identical (state and edge counts — the differential harness
covers the stronger property), and records wall times and speedups in the
day's ``BENCH_<date>.json`` under ``parallel_probes`` (section-level merge,
same convention as ``run_all.py``).

The scaling target is >=1.8x at 4 workers on the largest configuration.
That requires >=4 usable cores; the record always carries
``available_cpus`` so a single-core container's numbers (pure coordination
overhead, speedup < 1) are not mistaken for a scaling regression.

Usage::

    python benchmarks/bench_parallel.py            # full sweep -> BENCH json
    python benchmarks/bench_parallel.py --quick    # CI smoke, no JSON write
    python benchmarks/bench_parallel.py --sizes 6 7 --workers 1 2 4
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SPEEDUP_TARGET = 1.8
TARGET_WORKERS = 4


def build_sequential(dcds, max_states):
    # Cold caches for every timed build: the kernel's successor memo would
    # otherwise replay the previous repeat's exploration for free and the
    # best-of-N would measure a memo lookup, not a build.
    from repro.core.execution import clear_subproblem_caches
    from repro.engine import DetAbstractionGenerator, Explorer

    clear_subproblem_caches()
    started = time.perf_counter()
    ts = Explorer(dcds.schema, max_states=max_states).run(
        DetAbstractionGenerator(dcds)).transition_system
    return ts, time.perf_counter() - started


def build_parallel(dcds, max_states, workers, batch_size):
    from repro.core.execution import clear_subproblem_caches
    from repro.engine import DetAbstractionGenerator, ParallelExplorer

    clear_subproblem_caches()
    started = time.perf_counter()
    result = ParallelExplorer(
        dcds.schema, max_states=max_states, workers=workers,
        batch_size=batch_size,
    ).run(DetAbstractionGenerator(dcds))
    return result, time.perf_counter() - started


def legacy_pickle_bytes(dcds, ts, batch_size):
    """What the PR 3 transport would ship for this exploration.

    Dispatch pickled every frontier state once; results pickled every
    successor triple. Call this right after the sequential baseline: the
    kernel's successor memo is still warm from that build, so the replay
    costs pickling only (the parallel builds clear the caches again).
    """
    import pickle

    from repro.engine import DetAbstractionGenerator

    generator = DetAbstractionGenerator(dcds)
    states = sorted(ts.states, key=repr)
    sent = sum(
        len(pickle.dumps(states[i:i + batch_size],
                         pickle.HIGHEST_PROTOCOL))
        for i in range(0, len(states), batch_size))
    received = sum(
        len(pickle.dumps(
            [list(generator.successors(state))
             for state in states[i:i + batch_size]],
            pickle.HIGHEST_PROTOCOL))
        for i in range(0, len(states), batch_size))
    return sent + received


def sweep(sizes, worker_counts, batch_size, repeats):
    from repro.workloads import commitment_blowup_dcds

    results = {}
    for n in sizes:
        dcds = commitment_blowup_dcds(n)
        max_states = 400000
        baseline_ts, baseline_sec = min(
            (build_sequential(dcds, max_states) for _ in range(repeats)),
            key=lambda pair: pair[1])
        legacy_bytes = legacy_pickle_bytes(dcds, baseline_ts, batch_size)
        entry = {
            "states": len(baseline_ts),
            "edges": baseline_ts.edge_count(),
            "sequential_sec": baseline_sec,
            "legacy_pickle_bytes_total": legacy_bytes,
            "legacy_pickle_bytes_per_state":
                legacy_bytes / len(baseline_ts),
            "workers": {},
        }
        for workers in worker_counts:
            parallel_result, parallel_sec = min(
                (build_parallel(dcds, max_states, workers, batch_size)
                 for _ in range(repeats)),
                key=lambda pair: pair[1])
            parallel_ts = parallel_result.transition_system
            assert len(parallel_ts) == len(baseline_ts), (n, workers)
            assert parallel_ts.edge_count() == baseline_ts.edge_count(), \
                (n, workers)
            parallel_stats = parallel_result.stats.parallel
            shipped = parallel_stats.get("states_shipped") or 1
            wire_bytes = parallel_stats.get("ipc_bytes_sent", 0) \
                + parallel_stats.get("ipc_bytes_received", 0)
            entry["workers"][str(workers)] = {
                "sec": parallel_sec,
                "speedup_vs_sequential": baseline_sec / parallel_sec
                if parallel_sec else None,
                "codec": parallel_stats.get("codec"),
                "ipc_bytes_sent": parallel_stats.get("ipc_bytes_sent"),
                "ipc_bytes_received":
                    parallel_stats.get("ipc_bytes_received"),
                "ipc_bytes_per_state": wire_bytes / shipped,
                "coordinator_decode_sec":
                    parallel_stats.get("coordinator_decode_sec"),
                "coordinator_apply_sec":
                    parallel_stats.get("coordinator_apply_sec"),
            }
            print(f"  blowup[{n}] workers={workers}: {parallel_sec:.3f}s "
                  f"(sequential {baseline_sec:.3f}s, "
                  f"{baseline_sec / parallel_sec:.2f}x, "
                  f"{wire_bytes / shipped:.0f} B/state)")
        results[f"blowup[{n}]"] = entry
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[6, 7, 8],
                        help="commitment_blowup_dcds sizes to sweep")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to sweep")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="smallest config only, no BENCH json write "
                             "(CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for the BENCH_<date>.json record")
    args = parser.parse_args()

    from repro.engine import default_workers

    cpus = default_workers()

    if args.quick:
        sizes, worker_counts, repeats = [5], [1, 2], 1
    else:
        sizes, worker_counts, repeats = \
            args.sizes, args.workers, args.repeats

    print(f"parallel sweep: sizes={sizes} workers={worker_counts} "
          f"(available cpus: {cpus})")
    results = sweep(sizes, worker_counts, args.batch_size, repeats)

    largest = f"blowup[{max(sizes)}]"
    largest_entry = results[largest]
    at_target = largest_entry["workers"].get(str(TARGET_WORKERS), {})
    at_one = largest_entry["workers"].get("1", {})
    # workers=1 short-circuits to the in-process loop (codec "inline",
    # zero IPC) since PR 5 — wire traffic is read from the smallest pool
    # that actually dispatches.
    wire_per_state = next(
        (stats.get("ipc_bytes_per_state")
         for _, stats in sorted(largest_entry["workers"].items(),
                                key=lambda item: int(item[0]))
         if stats.get("codec") == "wire"), None)
    legacy_per_state = largest_entry.get("legacy_pickle_bytes_per_state")
    ipc_summary = {
        "wire_bytes_per_state": wire_per_state,
        "legacy_pickle_bytes_per_state": legacy_per_state,
        "reduction_factor": (legacy_per_state / wire_per_state
                             if wire_per_state and legacy_per_state
                             else None),
        "workers_1_overhead_ratio":
            at_one.get("speedup_vs_sequential"),
        "note": (
            "workers_1_overhead_ratio is sequential_sec / workers-1 "
            "wall time on the largest configuration; workers=1 runs the "
            "in-process sequential apply loop (no pipes, no codec) since "
            "PR 5, so the ratio measures the residual bookkeeping only"),
    }
    record_section = {
        "available_cpus": cpus,
        "batch_size": args.batch_size,
        "ipc": ipc_summary,
        "sweep": results,
        "largest_configuration": {
            "config": largest,
            "sequential_sec": largest_entry["sequential_sec"],
            **{f"workers_{count}_{key}": value
               for count, stats in largest_entry["workers"].items()
               for key, value in stats.items()},
            "speedup_target": SPEEDUP_TARGET,
            "target_workers": TARGET_WORKERS,
            "meets_target": (
                at_target.get("speedup_vs_sequential") is not None
                and at_target["speedup_vs_sequential"] >= SPEEDUP_TARGET),
            "note": (
                "target requires >= 4 usable cores; on fewer cores the "
                "parallel build measures pure coordination overhead"
                if cpus < TARGET_WORKERS else
                "measured on >= 4 cores"),
        },
    }

    if args.quick:
        print("quick mode: smoke only, BENCH json not written")
        print(json.dumps(record_section["largest_configuration"], indent=2))
        return

    from _record import write_bench_record

    date = datetime.date.today().isoformat()
    write_bench_record(
        args.out, {"date": date, "parallel_probes": record_section})


if __name__ == "__main__":
    main()
