"""Model-checking cost — the compiled engine vs the seed-style evaluator.

Section 6: checking a formula of size ``l`` with ``k`` alternating
fixpoints over an ``n``-state system costs ``O((2^n * n^l)^k)`` in the
worst case. This sweep regenerates the shape along both axes — transition
system size × fixpoint alternation depth — and pins the compiled checker
(`repro.mucalc.engine`: predecessor-index modalities, memoized subformula
extensions, Emerson–Lei warm starts) against the seed-style recursive
evaluator (`ModelChecker(..., compiled=False)`), asserting equal
extensions before timing.

`benchmarks/run_all.py` records the compiled-vs-reference wall-time ratio
on the largest alternation configuration in ``BENCH_<date>.json``
(`checker_probes`); the repo's acceptance bar is >= 2x there.
"""

import pytest

from repro.mucalc import EF, ModelChecker, parse_mu
from repro.mucalc.ast import Diamond, MAnd, MOr, Mu, Nu, PredVar
from repro.relational import DatabaseSchema, Instance, fact
from repro.semantics import TransitionSystem

SIZES = [60, 120, 240]
DEPTHS = [1, 2, 3]
CHAIN_SIZES = [480, 960]


def synthetic_ts(n: int) -> TransitionSystem:
    """Ring with chords; facts rotate through 7 values so LIVE varies."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, 0, name=f"ring[{n}]")
    for i in range(n):
        facts = [fact("P", f"v{i % 7}")]
        if i % 3 == 0:
            facts.append(fact("Q", f"v{(i + 1) % 7}"))
        ts.add_state(i, Instance(facts))
    for i in range(n):
        ts.add_edge(i, (i + 1) % n)
        ts.add_edge(i, (i * 7 + 3) % n)
    return ts


def chain_ts(n: int) -> TransitionSystem:
    """Path ``0 -> 1 -> ... -> n-1`` plus one back edge ``n-1 -> 0``;
    ``Q`` holds only at the far end. Reachability-style fixpoints need
    ~``n`` iterations to converge here (the system's diameter), so the
    modal/fixpoint superstructure dominates the leaf queries — the stress
    case for the bitset backend's word-level convergence compares and
    delta-gathered diamonds. Contrast with ``synthetic_ts``: the ring's
    chords keep its diameter small and its cost leaf-bound."""
    schema = DatabaseSchema.of("P/1", "Q/1")
    ts = TransitionSystem(schema, 0, name=f"chain-ts[{n}]")
    for i in range(n):
        facts = [fact("P", f"v{i % 7}")]
        if i == n - 1:
            facts.append(fact("Q", "v1"))
        ts.add_state(i, Instance(facts))
    for i in range(n - 1):
        ts.add_edge(i, i + 1)
    ts.add_edge(n - 1, 0)
    return ts


def chain_formulas():
    """The long-diameter probe pair: plain reachability (``EF``, a mu
    needing ~n iterations) and infinitely-often (alternating nu/mu whose
    inner mu re-runs per outer iteration)."""
    probe = parse_mu("Q('v1')")
    infinitely_often = Nu("X", Mu("Y", MOr.of(
        MAnd.of(probe, Diamond(PredVar("X"))), Diamond(PredVar("Y")))))
    return {"EF": EF(probe), "inf-often": infinitely_often}


def formula_for_depth(depth: int):
    """Alternation towers: EF (1), infinitely-often (2), EF of a guarded
    infinitely-often region (3)."""
    probe = parse_mu("Q('v1')")
    if depth == 1:
        return EF(probe)
    infinitely_often = Nu("X", Mu("Y", MOr.of(
        MAnd.of(probe, Diamond(PredVar("X"))), Diamond(PredVar("Y")))))
    if depth == 2:
        return infinitely_often
    return Mu("Z", MOr.of(
        MAnd.of(parse_mu("P('v2')"), infinitely_often),
        Diamond(PredVar("Z"))))


def quantified_formula():
    """Infinitely often some live value in Q — quantifier inside the
    alternating tower (LIVE-guarded, so the active-domain restriction and
    conjunct ordering both engage)."""
    return Nu("X", Mu("Y", MOr.of(
        MAnd.of(parse_mu("E x. live(x) & Q(x)"), Diamond(PredVar("X"))),
        Diamond(PredVar("Y")))))


class TestCompiledSweep:
    """Compiled-checker wall times across the size × depth grid."""

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_compiled(self, benchmark, n, depth):
        ts = synthetic_ts(n)
        formula = formula_for_depth(depth)
        expected = ModelChecker(ts, compiled=False).evaluate(formula)
        result = benchmark(
            lambda: ModelChecker(ts).evaluate(formula))
        assert result == expected

    @pytest.mark.parametrize("n", SIZES)
    def test_compiled_quantified(self, benchmark, n):
        ts = synthetic_ts(n)
        formula = quantified_formula()
        expected = ModelChecker(ts, compiled=False).evaluate(formula)
        result = benchmark(
            lambda: ModelChecker(ts).evaluate(formula))
        assert result == expected


class TestChainFixpoints:
    """Iteration-heavy checking on the long-diameter chain: the compiled
    checker (bitset backend by default) against the reference evaluator's
    extension for correctness, wall time recorded for the gate record.
    Under ``REPRO_NO_VECTOR=1`` the same tests time the set-based engine —
    CI runs both, so the record keeps an honest pair."""

    @pytest.mark.parametrize("n", CHAIN_SIZES)
    @pytest.mark.parametrize("name", sorted(chain_formulas()))
    def test_chain_compiled(self, benchmark, n, name):
        ts = chain_ts(n)
        formula = chain_formulas()[name]
        result = benchmark(lambda: ModelChecker(ts).evaluate(formula))
        # Every state reaches the far-end Q (and the back edge closes the
        # lasso), so both formulas hold everywhere.
        assert len(result) == n


class TestReferenceSweep:
    """Seed-style evaluator on the smallest size (the comparison base;
    larger sizes are timed by run_all.py's checker probes)."""

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_reference(self, benchmark, depth):
        ts = synthetic_ts(SIZES[0])
        formula = formula_for_depth(depth)
        benchmark(
            lambda: ModelChecker(ts, compiled=False).evaluate(formula))


class TestGalleryProperty:
    """The slowest real checking job in the repo: the Appendix E audit
    property over the slim audit-system abstraction (quantified µLP with
    nested fixpoints). Compiled path only — the reference evaluator takes
    ~60s here, which is exactly why the compiled layer exists; parity for
    this pair is asserted once in `test_audit_parity`."""

    @pytest.fixture(scope="class")
    def audit_ts(self):
        from repro.gallery import audit_system
        from repro.semantics import build_det_abstraction

        return build_det_abstraction(audit_system(slim=True))

    def test_audit_property_compiled(self, benchmark, audit_ts):
        from repro.gallery.travel import property_audit_failure_propagates_slim

        formula = property_audit_failure_propagates_slim()
        result = benchmark(
            lambda: ModelChecker(audit_ts).evaluate(formula))
        assert result  # the property holds on (at least) the initial state

    @pytest.mark.skipif(
        "not config.getoption('--run-slow-parity', default=False)",
        reason="~60s reference evaluation; run via --run-slow-parity")
    def test_audit_parity(self, audit_ts):
        from repro.gallery.travel import property_audit_failure_propagates_slim

        formula = property_audit_failure_propagates_slim()
        assert ModelChecker(audit_ts).evaluate(formula) == \
            ModelChecker(audit_ts, compiled=False).evaluate(formula)
