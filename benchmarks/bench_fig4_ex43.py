"""Figure 4 — Example 4.3 (deterministic): run-unbounded divergence.

Paper: the chain ``a, f(a), f(f(a)), ...`` makes every finite abstraction
attempt fail; the abstract state count keeps growing with depth. We
regenerate the growth trace and time bounded-depth construction.
"""

import pytest

from repro.errors import AbstractionDiverged
from repro.gallery import example_43
from repro.semantics import build_det_abstraction, det_growth_trace


@pytest.fixture(scope="module")
def dcds():
    return example_43()


def test_fig4_growth_trace(benchmark, dcds):
    trace = benchmark(det_growth_trace, dcds, 8)
    # New states appear at every level and keep increasing overall.
    assert len(trace) == 9
    assert all(count > 0 for count in trace)
    assert trace[-1] >= trace[1]


def test_fig4_fuse_trips(benchmark, dcds):
    def diverge():
        try:
            build_det_abstraction(dcds, max_states=300)
        except AbstractionDiverged as diverged:
            return diverged
        raise AssertionError("expected divergence")

    diverged = benchmark(diverge)
    assert diverged.partial_states > 300
