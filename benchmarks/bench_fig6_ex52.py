"""Figure 6 — Example 5.2: state-unbounded accumulation under nondet services.

Paper: fresh values returned by ``f`` are recalled by the Q self-loop, so
states grow without bound; the abstraction is finitely branching but has
infinitely many, growing states. We regenerate the growth evidence.
"""

import pytest

from repro.errors import AbstractionDiverged
from repro.gallery import example_52
from repro.semantics import rcycl, rcycl_partial, state_size_trace


@pytest.fixture(scope="module")
def dcds():
    return example_52()


def test_fig6_state_growth(benchmark, dcds):
    sizes = benchmark(state_size_trace, dcds, 150)
    assert max(sizes) >= 3          # Q facts accumulate
    assert sizes[0] == 1            # I0 = {R(a)}


def test_fig6_finite_branching(benchmark, dcds):
    result = benchmark(rcycl_partial, dcds, 100)
    assert result.diverged
    ts = result.transition_system
    assert all(len(ts.successors(state)) < 40 for state in ts.states)


def test_fig6_rcycl_fuse(benchmark, dcds):
    def diverge():
        with pytest.raises(AbstractionDiverged) as excinfo:
            rcycl(dcds, max_states=150)
        return excinfo.value

    diverged = benchmark(diverge)
    assert diverged.partial_states > 150
