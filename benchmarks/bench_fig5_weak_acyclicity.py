"""Figure 5 — dependency graphs and weak-acyclicity verdicts.

Paper: Examples 4.1/4.2 share the weakly acyclic graph of Fig 5(a) (special
edges P,1 -> Q,1 and P,1 -> Q,2); Example 4.3's graph (Fig 5(b)) has the
special edge R,1 -> Q,1 closed by the ordinary edge Q,1 -> R,1.
"""

import pytest

from repro.analysis import dependency_graph
from repro.gallery import example_41, example_42, example_43


def test_fig5a_ex41(benchmark):
    graph = benchmark(dependency_graph, example_41())
    assert graph.is_weakly_acyclic()
    assert set(graph.special_edges()) == {
        (("P", 0), ("Q", 0)), (("P", 0), ("Q", 1))}


def test_fig5a_ex42_same_graph(benchmark):
    graph = benchmark(dependency_graph, example_42())
    assert graph.is_weakly_acyclic()
    assert set(graph.edges()) == set(dependency_graph(example_41()).edges())


def test_fig5b_ex43(benchmark):
    graph = benchmark(dependency_graph, example_43())
    assert not graph.is_weakly_acyclic()
    assert graph.violating_special_edge() == (("R", 0), ("Q", 0))
    assert set(graph.ordinary_edges()) == {(("Q", 0), ("R", 0))}
