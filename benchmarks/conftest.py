"""Benchmark-suite configuration.

Every benchmark below regenerates one artifact of the paper (a figure or
table) and *asserts the paper-shape facts* before timing, so the suite
doubles as a reproduction regression check. Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow-parity", action="store_true", default=False,
        help="also run multi-minute reference-evaluator parity checks "
             "(bench_model_checking.py)")
