"""Benchmark-suite configuration.

Every benchmark below regenerates one artifact of the paper (a figure or
table) and *asserts the paper-shape facts* before timing, so the suite
doubles as a reproduction regression check. Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest
