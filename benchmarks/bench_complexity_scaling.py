"""Section 6 complexity — abstraction size and model-checking cost.

Paper: "our construction generates a finite transition system whose number
of states is exponential in the size of the DCDS" and model checking a
formula of size l with k alternating fixpoints costs O((2^n · n^l)^k).

We regenerate both shapes:

* the commitment-blowup family: one action with ``n`` independent fresh
  service calls — the first abstraction level is the full equality-
  commitment lattice, super-exponential in ``n``;
* the chain family: abstraction size grows with pipeline depth;
* model-checking time as a function of fixpoint nesting depth ``k``.
"""

import sys
from pathlib import Path

# Standalone-CLI support (the regression gate below): pytest runs get the
# path from PYTHONPATH/conftest anyway.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.mucalc import ModelChecker, parse_mu
from repro.mucalc.ast import Box, Diamond, MAnd, MOr, Mu, Nu, PredVar, QF
from repro.semantics import build_det_abstraction
from repro.semantics.commitments import count_commitments
from repro.workloads import (
    chain_dcds, commitment_blowup_dcds, conveyor_dcds, lattice_dcds)


class TestAbstractionBlowup:
    @pytest.mark.parametrize("n_calls", [1, 2, 3])
    def test_first_level_is_commitment_lattice(self, benchmark, n_calls):
        dcds = commitment_blowup_dcds(n_calls)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        level1 = len(ts.depth_levels()[1])
        assert level1 == count_commitments(n_calls, 1)

    def test_growth_is_superexponential(self, benchmark):
        sizes = benchmark(
            lambda: [count_commitments(n, 1) for n in range(1, 7)])
        ratios = [later / earlier
                  for earlier, later in zip(sizes, sizes[1:])]
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))


class TestChainScaling:
    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_chain_abstraction(self, benchmark, length):
        dcds = chain_dcds(length)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        # Weakly acyclic: position ranks equal chain depth, so this always
        # terminates; deeper chains give strictly larger systems.
        assert len(ts) >= length

    def test_monotone_in_length(self, benchmark):
        sizes = benchmark(
            lambda: [len(build_det_abstraction(chain_dcds(n), 100000))
                     for n in (1, 2, 3)])
        assert sizes[0] < sizes[1] < sizes[2]


class TestLatticeJoins:
    """Join-heavy grounding on the grid workload: dense multiway
    self-joins with negation, trivial state space — build time is almost
    entirely relational evaluation, so this is where the columnar vector
    backend shows (and where ``REPRO_NO_VECTOR=1`` CI runs time the
    interpreted kernel on identical inputs)."""

    @pytest.mark.parametrize("k", [1, 3])
    def test_lattice_abstraction(self, benchmark, k):
        dcds = lattice_dcds(k)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        # No service calls, E copied verbatim: the abstraction closes
        # immediately after the one survey step.
        assert len(ts) == 2


class TestConveyorFrontiers:
    """Deep, wide-frontier exploration on the conveyor workload: many
    small sibling instances per frontier sharing their static payload
    relation — the configuration the frontier-batch tier targets (and
    where ``REPRO_NO_BATCH=1`` CI runs time the per-state grounding on
    identical inputs)."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_conveyor_abstraction(self, benchmark, k):
        dcds = conveyor_dcds(k)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        # Token positions are independent monotone counters: the space is
        # exactly cells^tokens.
        assert len(ts) == (2 * k + 3) ** (k + 1)


class TestModelCheckingCost:
    @pytest.fixture(scope="class")
    def arena(self):
        return build_det_abstraction(commitment_blowup_dcds(3), 100000)

    def _nested_formula(self, k):
        """k alternating fixpoints: nu X1. mu X2. nu X3. ... body."""
        body = QF(parse_mu("Seed('c')").query)
        formula = body
        for index in range(k, 0, -1):
            var = f"X{index}"
            if index % 2 == 1:
                formula = Nu(var, MAnd.of(formula, Box(PredVar(var))))
            else:
                formula = Mu(var, MOr.of(formula, Diamond(PredVar(var))))
        return formula

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_nesting_depth(self, benchmark, arena, k):
        formula = self._nested_formula(k)
        checker = ModelChecker(arena)
        result = benchmark(checker.evaluate, formula)
        assert arena.initial in result  # Seed('c') persists everywhere

    def test_quantifier_expansion_cost(self, benchmark, arena):
        # Each quantified variable multiplies work by |domain|.
        formula = parse_mu(
            "E x, y. live(x) & live(y) & mu Z. (Seed(x) | <-> Z)")
        checker = ModelChecker(arena)
        result = benchmark(checker.evaluate, formula)
        assert arena.initial in result


# ---------------------------------------------------------------------------
# CLI: hot-path regression gate (CI runs `bench_complexity_scaling --quick`)
# ---------------------------------------------------------------------------

GATE_PROBES = {
    "abstraction-blowup[3]": lambda: _timed_build(commitment_blowup_dcds(3)),
    "chain[3]": lambda: _timed_build(chain_dcds(3)),
    "conveyor[2]": lambda: _timed_build(conveyor_dcds(2)),
    "lattice[3]": lambda: _timed_build(lattice_dcds(3)),
}


def _timed_build(dcds):
    import time

    from repro.core.execution import clear_subproblem_caches

    # Cold caches: the kernel's successor memo would otherwise replay the
    # previous round's exploration and the probe would time a dict lookup
    # instead of the grounding/join hot path it is meant to guard.
    clear_subproblem_caches()
    started = time.perf_counter()
    build_det_abstraction(dcds, 100000)
    return time.perf_counter() - started


def _probe_min(build, rounds=30, warmup=3):
    """Best-of-N: the min is far more stable than the mean for sub-ms
    probes (GC pauses and scheduler noise only ever add time)."""
    for _ in range(warmup):
        build()
    return min(build() for _ in range(rounds))


def _calibration() -> float:
    """A fixed pure-Python workload timing, independent of repro code.

    Gating compares wall times across machines; scaling the baseline by
    the calibration ratio turns the comparison into "slower *relative to
    this interpreter/host*", so a slower CI runner does not trip the gate
    and a faster one does not mask a regression.
    """
    import time

    def workload():
        total = 0
        for i in range(120000):
            total += hash((i, i % 7))
        return total

    workload()  # warmup
    best = None
    for _ in range(7):
        started = time.perf_counter()
        workload()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best


def _latest_baseline(repo_root):
    """Newest ``BENCH_*.json`` with a recorded ``hot_path_gate`` section.

    The section is written by ``--record`` with exactly the measurement
    methodology the gate replays, so the comparison is apples-to-apples.
    """
    import json
    from pathlib import Path

    candidates = sorted(Path(repo_root).glob("BENCH_*.json"), reverse=True)
    for path in candidates:
        record = json.loads(path.read_text())
        gate = record.get("hot_path_gate", {})
        if all(name in gate for name in GATE_PROBES):
            probes = {name: gate[name]["min_sec"]
                      for name in GATE_PROBES}
            return path, (probes, gate.get("calibration_sec"),
                          record.get("python"))
    return None, (None, None, None)


def main() -> int:
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Hot-path regression gate: re-measure the "
                    "abstraction-build probes and fail if they regressed "
                    "more than --tolerance vs the baseline recorded in "
                    "the repo's newest BENCH_*.json.")
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds (CI smoke)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--record", action="store_true",
                        help="measure and write the hot_path_gate baseline "
                             "into the day's BENCH_<date>.json instead of "
                             "gating")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one cold round of each gate probe "
                             "and print the top 20 entries by cumulative "
                             "time instead of gating")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    if args.profile:
        import cProfile
        import pstats

        for name, build in GATE_PROBES.items():
            build()  # warm imports and interning outside the profile
            profiler = cProfile.Profile()
            profiler.enable()
            build()  # _timed_build clears caches: this round is cold
            profiler.disable()
            print(f"\n=== {name}: top 20 by cumulative time ===")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
        return 0
    if args.record:
        import datetime

        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from _record import write_bench_record

        section = {"calibration_sec": _calibration()}
        for name, build in GATE_PROBES.items():
            best = _probe_min(build, rounds=50)
            section[name] = {"min_sec": best}
            print(f"  {name}: {best * 1e3:.3f} ms")
        print(f"  calibration: {section['calibration_sec'] * 1e3:.3f} ms")
        write_bench_record(repo_root, {
            "date": datetime.date.today().isoformat(),
            "hot_path_gate": section,
        })
        return 0

    baseline_path, (baseline, recorded_calibration, recorded_python) = \
        _latest_baseline(repo_root)
    if not baseline:
        print("no BENCH_*.json with gate probes found; nothing to gate "
              "against (pass)")
        return 0
    import platform

    if recorded_python and recorded_python != platform.python_version():
        # The calibration loop and the hot path need not scale alike
        # across interpreter builds; a hard gate would then fail every
        # unrelated PR. Warn and re-record instead.
        print(f"baseline recorded on Python {recorded_python}, running "
              f"{platform.python_version()}: skipping the gate — "
              f"re-record with --record")
        return 0
    scale = 1.0
    if recorded_calibration:
        scale = _calibration() / recorded_calibration
    print(f"baseline: {baseline_path.name} (tolerance "
          f"{args.tolerance:.0%}, machine scale {scale:.2f}x)")

    rounds = 15 if args.quick else 30
    failures = []
    for name, build in GATE_PROBES.items():
        best = _probe_min(build, rounds=rounds)
        reference = baseline[name] * scale
        ratio = best / reference if reference else 0.0
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"  {name}: {best * 1e3:.3f} ms vs baseline "
              f"{reference * 1e3:.3f} ms ({ratio:.2f}x) {verdict}")
        if ratio > 1.0 + args.tolerance:
            failures.append(name)
    if failures:
        print(f"FAIL: {len(failures)} probe(s) regressed beyond "
              f"{args.tolerance:.0%}")
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
