"""Section 6 complexity — abstraction size and model-checking cost.

Paper: "our construction generates a finite transition system whose number
of states is exponential in the size of the DCDS" and model checking a
formula of size l with k alternating fixpoints costs O((2^n · n^l)^k).

We regenerate both shapes:

* the commitment-blowup family: one action with ``n`` independent fresh
  service calls — the first abstraction level is the full equality-
  commitment lattice, super-exponential in ``n``;
* the chain family: abstraction size grows with pipeline depth;
* model-checking time as a function of fixpoint nesting depth ``k``.
"""

import pytest

from repro.mucalc import ModelChecker, parse_mu
from repro.mucalc.ast import Box, Diamond, MAnd, MOr, Mu, Nu, PredVar, QF
from repro.semantics import build_det_abstraction
from repro.semantics.commitments import count_commitments
from repro.workloads import chain_dcds, commitment_blowup_dcds


class TestAbstractionBlowup:
    @pytest.mark.parametrize("n_calls", [1, 2, 3])
    def test_first_level_is_commitment_lattice(self, benchmark, n_calls):
        dcds = commitment_blowup_dcds(n_calls)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        level1 = len(ts.depth_levels()[1])
        assert level1 == count_commitments(n_calls, 1)

    def test_growth_is_superexponential(self, benchmark):
        sizes = benchmark(
            lambda: [count_commitments(n, 1) for n in range(1, 7)])
        ratios = [later / earlier
                  for earlier, later in zip(sizes, sizes[1:])]
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))


class TestChainScaling:
    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_chain_abstraction(self, benchmark, length):
        dcds = chain_dcds(length)
        ts = benchmark(build_det_abstraction, dcds, 100000)
        # Weakly acyclic: position ranks equal chain depth, so this always
        # terminates; deeper chains give strictly larger systems.
        assert len(ts) >= length

    def test_monotone_in_length(self, benchmark):
        sizes = benchmark(
            lambda: [len(build_det_abstraction(chain_dcds(n), 100000))
                     for n in (1, 2, 3)])
        assert sizes[0] < sizes[1] < sizes[2]


class TestModelCheckingCost:
    @pytest.fixture(scope="class")
    def arena(self):
        return build_det_abstraction(commitment_blowup_dcds(3), 100000)

    def _nested_formula(self, k):
        """k alternating fixpoints: nu X1. mu X2. nu X3. ... body."""
        body = QF(parse_mu("Seed('c')").query)
        formula = body
        for index in range(k, 0, -1):
            var = f"X{index}"
            if index % 2 == 1:
                formula = Nu(var, MAnd.of(formula, Box(PredVar(var))))
            else:
                formula = Mu(var, MOr.of(formula, Diamond(PredVar(var))))
        return formula

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_nesting_depth(self, benchmark, arena, k):
        formula = self._nested_formula(k)
        checker = ModelChecker(arena)
        result = benchmark(checker.evaluate, formula)
        assert arena.initial in result  # Seed('c') persists everywhere

    def test_quantifier_expansion_cost(self, benchmark, arena):
        # Each quantified variable multiplies work by |domain|.
        formula = parse_mu(
            "E x, y. live(x) & live(y) & mu Z. (Seed(x) | <-> Z)")
        checker = ModelChecker(arena)
        result = benchmark(checker.evaluate, formula)
        assert arena.initial in result
