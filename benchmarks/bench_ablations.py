"""Ablations — the paper's finiteness devices, switched off.

DESIGN.md calls out the load-bearing design choices inherited from the
paper. Each ablation removes one and demonstrates the cost on a system the
real construction handles instantly:

* no recycling preference in RCYCL (Appendix C.3's eventually-recycling
  requirement) — diverges on Example 4.3-as-nondet, which the real RCYCL
  saturates in 6 states;
* equality commitments replaced by brute-force enumeration over an explicit
  value pool — the pool-restricted system keeps growing with the pool size
  while the commitment abstraction is a fixed 10-state system that is
  bounded-bisimilar to every one of them.
"""

import pytest

from repro.bisim import BisimMode, bounded_bisimilar
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_43
from repro.relational.values import Fresh
from repro.semantics import build_det_abstraction, explore_concrete, rcycl
from repro.semantics.ablations import AblationExhausted, rcycl_fresh_only


class TestRecyclingAblation:
    def test_real_rcycl_saturates(self, benchmark):
        dcds = example_43(ServiceSemantics.NONDETERMINISTIC)
        ts = benchmark(rcycl, dcds)
        assert len(ts) == 6

    def test_fresh_only_diverges(self, benchmark):
        dcds = example_43(ServiceSemantics.NONDETERMINISTIC)

        def run_ablated():
            try:
                rcycl_fresh_only(dcds, max_states=200)
            except AblationExhausted as exhausted:
                return exhausted
            raise AssertionError("ablation unexpectedly saturated")

        exhausted = benchmark(run_ablated)
        assert exhausted.states_reached > 200


class TestCommitmentsVsPoolEnumeration:
    def test_commitment_abstraction_fixed_size(self, benchmark):
        ts = benchmark(build_det_abstraction, example_41())
        assert len(ts) == 10

    @pytest.mark.parametrize("pool_size", [2, 3, 4, 5])
    def test_pool_enumeration_grows(self, benchmark, pool_size):
        dcds = example_41()
        pool = ["a"] + [Fresh(200 + i) for i in range(pool_size - 1)]
        ts = benchmark(explore_concrete, dcds, pool, 3)
        # Brute force: quadratic-ish growth in the pool, where the
        # commitment abstraction stays at 10 states.
        assert len(ts) >= 4 * (pool_size - 1)

    def test_all_pools_bisimilar_to_abstraction(self, benchmark):
        dcds = example_41()
        abstraction = build_det_abstraction(dcds)

        def check_pools():
            for pool_size in (3, 4):
                pool = ["a"] + [Fresh(200 + i)
                                for i in range(pool_size - 1)]
                concrete = explore_concrete(dcds, pool, depth=3)
                if not bounded_bisimilar(concrete, abstraction, depth=2,
                                         mode=BisimMode.HISTORY):
                    return False
            return True

        assert benchmark(check_pools)
